"""Composite pipeline stages: ``race(a,b,...)`` and wall-clock budgets.

These are the concurrency primitives of the pipeline spec language,
unlocked by the unified execution core (:mod:`repro.exec`):

* :class:`RaceStage` — the same incumbent fanned out to several *branches*
  (each branch is a sub-pipeline, e.g. ``race(ilp@bnb, ilp@scipy)`` or an
  anneal-seed race over ``refine(seed=..., strategy=anneal)`` variants).
  Branches run concurrently when the executing session granted slots
  (:func:`repro.exec.slots.branch_slots`), sequentially otherwise — the
  outcome is identical either way: the **winner is chosen
  deterministically** by lowest cost, ties broken by canonical branch
  order (branches canonicalize *sorted*, so shuffling them in the spec
  changes nothing).  Losers are cancelled — via the solver cancellation
  hooks (:mod:`repro.ilp.cancellation`) — only once the winner is
  *provably* decided: every branch ahead of the leader in canonical order
  has finished and the leader's cost already matches the instance's theory
  lower bound, which no branch can beat.  The race's ``StageResult``
  (status, schedule, cost, extras) derives from the winner alone, so
  fingerprints are independent of worker count and completion order.
* :class:`BudgetedStage` — a ``budget=<seconds>s`` option on any stage
  token wraps the stage with a wall-clock deadline, enforced through the
  same cancellation hooks (the branch-and-bound backend stops at node
  granularity; HiGHS has its time limit clamped; refinement caps its
  ``max_time``).  The budget is part of the canonical spec — and therefore
  of the engine job hash — so runs with different budgets never collide in
  the result cache, and a cache hit replays the budgeted outcome as-is.
  A budget that actually *binds* makes the outcome wall-clock dependent,
  exactly like ``--time-limit``; use node limits plus generous budgets for
  sweeps that must be bit-reproducible.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.exceptions import ConfigurationError
from repro.ilp.backends import scoped_solver_stats
from repro.ilp.cancellation import CancelToken, cancel_scope, current_cancel_token
from repro.model.instance import MbspInstance
from repro.pipeline.registry import StageFactory, register_stage
from repro.pipeline.stage import Incumbent, StageContext, StageResult

#: Tolerance for "the leader's cost already matches the lower bound".
_BOUND_EPS = 1e-9

#: Ready-made race members (documented, tested and used by the CI smoke).
EXAMPLE_RACE_SPECS: Dict[str, str] = {
    # the ROADMAP's backend race: one incumbent, both ILP backends
    "backend race": "baseline|race(ilp@bnb,ilp@scipy)",
    # the anneal-seed race: concurrent annealing restarts, best seed wins
    "anneal-seed race": (
        "baseline|race(refine(seed=11,strategy=anneal),"
        "refine(seed=23,strategy=anneal),refine(seed=47,strategy=anneal))"
    ),
}


def splice_option(token: str, key: str, value: str) -> str:
    """Insert ``key=value`` into a canonical stage token.

    Positional arguments keep their order; options stay sorted — the same
    canonical layout the parser produces, so splicing commutes with
    parsing (``BudgetedStage.spec_token`` relies on this fixed point).
    """
    from repro.pipeline.spec import has_top_level, split_top_level

    item = f"{key}={value}"
    if token.endswith(")"):
        head, _, body = token.partition("(")
        body = body[:-1]
        items = [i.strip() for i in split_top_level(body, ",") if i.strip()]
        args = [i for i in items if not has_top_level(i, "=")]
        options = sorted([i for i in items if has_top_level(i, "=")] + [item])
        return f"{head}({','.join(args + options)})"
    return f"{token}({item})"


# ----------------------------------------------------------------------
# wall-clock budgets
# ----------------------------------------------------------------------
class BudgetedStage:
    """Wraps any stage with a wall-clock deadline (``budget=<seconds>s``)."""

    def __init__(self, inner, seconds: float) -> None:
        if seconds < 1e-6:
            raise ConfigurationError(
                "stage budget must be at least 1 microsecond"
            )
        self.inner = inner
        self.seconds = float(seconds)
        # the wrapper is transparent to the pipeline runner
        self.name = inner.name
        self.requires_incumbent = inner.requires_incumbent
        self.prunable = inner.prunable
        self.prune_label = inner.prune_label
        self.config_error_means_inapplicable = inner.config_error_means_inapplicable

    def spec_token(self) -> str:
        from repro.pipeline.spec import format_budget_seconds

        return splice_option(
            self.inner.spec_token(), "budget", format_budget_seconds(self.seconds)
        )

    def run(
        self, instance: MbspInstance, incumbent: Optional[Incumbent], ctx: StageContext
    ) -> StageResult:
        token = CancelToken.after(self.seconds, parent=current_cancel_token())
        start = time.perf_counter()
        with obs.trace_span(
            "budget", category="pipeline", spec=self.spec_token(), budget=self.seconds
        ) as span:
            with cancel_scope(token):
                result = self.inner.run(instance, incumbent, ctx)
            span.set(expired=token.deadline_expired())
        result.stage = self.spec_token()  # telemetry shows the budgeted token
        # deterministic budget accounting: the limit itself is part of the
        # spec token (and job hash); elapsed/expired are wall-clock
        # telemetry, excluded from result fingerprints
        result.telemetry["budget"] = self.seconds
        result.telemetry["budget_elapsed"] = time.perf_counter() - start
        result.telemetry["budget_expired"] = token.deadline_expired()
        return result


# ----------------------------------------------------------------------
# races
# ----------------------------------------------------------------------
@dataclass
class _BranchOutcome:
    """What one race branch produced (or why it did not)."""

    token: str
    cost: float = math.inf
    schedule: Optional[object] = None
    status: str = ""
    solve_time: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)
    inapplicable: str = ""
    cancelled: bool = False
    cancel_reason: str = ""
    skipped: bool = False  # never started: the winner was already decided
    wall_time: float = 0.0
    solver_calls: int = 0
    solver_time: float = 0.0
    error: Optional[BaseException] = None


class RaceStage:
    """Concurrent branches from one incumbent; deterministic winner.

    Branches are stored (and canonicalized) in sorted canonical-spec
    order; the winner is the branch with the lowest final cost, ties
    broken by that order — both independent of execution interleaving.
    A branch whose stage does not apply to the instance (e.g. a ``dfs``
    first stage with ``P > 1``) competes with infinite cost; when *no*
    branch applies the race keeps the incumbent (or reports an infinite
    cost when it had none).
    """

    name = "race"
    prune_label = ("incumbent cost", "race pruned")
    config_error_means_inapplicable = False

    def __init__(self, branches: Sequence[str]) -> None:
        branches = [str(branch).strip() for branch in branches if str(branch).strip()]
        if len(branches) < 2:
            raise ConfigurationError(
                "stage 'race' needs at least two branches, e.g. "
                "'race(ilp@bnb, ilp@scipy)'"
            )
        parsed = []
        for branch in branches:
            specs = self._parse_branch(branch)
            stages = [spec.build() for spec in specs]
            token = "|".join(stage.spec_token() for stage in stages)
            parsed.append((token, stages))
        parsed.sort(key=lambda item: item[0])
        self._tokens: List[str] = [token for token, _ in parsed]
        self._branches: List[list] = [stages for _, stages in parsed]
        self.requires_incumbent = any(
            stages[0].requires_incumbent for stages in self._branches
        )
        self.prunable = all(
            stage.prunable for stages in self._branches for stage in stages
        )

    @staticmethod
    def _parse_branch(text: str):
        from repro.pipeline.spec import _parse_stage_token, split_top_level

        # validation happens when __init__ builds the stages (once)
        return [
            _parse_stage_token(token, text, validate=False)
            for token in split_top_level(text, "|")
        ]

    def spec_token(self) -> str:
        return f"{self.name}({','.join(self._tokens)})"

    # ------------------------------------------------------------------
    def run(
        self, instance: MbspInstance, incumbent: Optional[Incumbent], ctx: StageContext
    ) -> StageResult:
        from repro.exec.slots import branch_slots

        count = len(self._branches)
        parent = current_cancel_token()
        tokens = [CancelToken(parent=parent) for _ in range(count)]
        outcomes: List[Optional[_BranchOutcome]] = [None] * count
        lock = threading.Lock()

        def prefix_decides(ahead) -> bool:
            """Whether a complete canonical-order prefix already decides the
            winner: its best *ran* cost matches the theory lower bound,
            which no later branch can beat (skipped losers are part of a
            complete prefix but carry no cost of their own)."""
            costs = [o.cost for o in ahead if not o.skipped]
            if not costs:
                return False
            best = min(costs)
            return math.isfinite(best) and best <= ctx.lower_bound() + _BOUND_EPS

        def decided_before(idx: int) -> bool:
            ahead = [outcomes[j] for j in range(idx)]
            if not ahead or any(o is None for o in ahead):
                return False
            return prefix_decides(ahead)

        def note_done() -> None:
            """Cancel still-running losers once the winner is decided."""
            with lock:
                complete = 0
                while complete < count and outcomes[complete] is not None:
                    complete += 1
                if complete and prefix_decides(outcomes[:complete]):
                    for j in range(complete, count):
                        if outcomes[j] is None:
                            tokens[j].cancel(reason="race winner decided")

        def fail_fast() -> None:
            """A genuine error in one branch stops all the others."""
            for token in tokens:
                token.cancel(reason="sibling branch failed")

        slots = min(count, branch_slots())
        if slots > 1:
            with ThreadPoolExecutor(
                max_workers=slots, thread_name_prefix="repro-race"
            ) as pool:
                futures = [
                    pool.submit(
                        self._run_branch, i, instance, incumbent, ctx, tokens[i],
                        outcomes, note_done, fail_fast,
                    )
                    for i in range(count)
                ]
                for future in futures:
                    future.result()
        else:
            for i in range(count):
                if decided_before(i):
                    # sequential cancellation: the loser is not even started
                    outcomes[i] = _BranchOutcome(
                        token=self._tokens[i],
                        cancelled=True,
                        cancel_reason="race winner decided",
                        skipped=True,
                    )
                    continue
                self._run_branch(
                    i, instance, incumbent, ctx, tokens[i], outcomes,
                    lambda: None, fail_fast,
                )
                if outcomes[i] is not None and outcomes[i].error is not None:
                    break

        errors = [o.error for o in outcomes if o is not None and o.error is not None]
        if errors:
            raise errors[0]
        return self._reduce(outcomes, incumbent)

    def _run_branch(
        self,
        idx: int,
        instance: MbspInstance,
        incumbent: Optional[Incumbent],
        ctx: StageContext,
        token: CancelToken,
        outcomes: List[Optional[_BranchOutcome]],
        note_done,
        fail_fast,
    ) -> None:
        outcome = _BranchOutcome(token=self._tokens[idx])
        stats_scope = scoped_solver_stats()
        start = time.perf_counter()
        with obs.trace_span(
            "race.branch", category="pipeline", branch=self._tokens[idx], index=idx
        ) as span:
            try:
                with stats_scope, cancel_scope(token):
                    current: Optional[Incumbent] = incumbent
                    for stage in self._branches[idx]:
                        if stage.requires_incumbent and current is None:
                            raise ConfigurationError(
                                f"race branch {self._tokens[idx]!r} needs an "
                                f"incumbent schedule; start the pipeline with a "
                                f"schedule-producing stage (e.g. 'baseline')"
                            )
                        try:
                            result = stage.run(instance, current, ctx)
                        except ConfigurationError as exc:
                            if getattr(stage, "config_error_means_inapplicable", False):
                                outcome.inapplicable = str(exc)
                                break
                            raise
                        outcome.solve_time += result.solve_time
                        for key, value in result.extras.items():
                            outcome.extras[key] = value
                        outcome.status = result.status
                        if result.schedule is not None:
                            current = Incumbent(
                                schedule=result.schedule,
                                cost=result.cost,
                                source=stage.spec_token(),
                            )
                    if not outcome.inapplicable and current is not incumbent and \
                            current is not None:
                        outcome.schedule = current.schedule
                        outcome.cost = current.cost
            except BaseException as exc:  # repro: lint-ignore[REP-C03] - stored on the outcome and re-raised by run()
                outcome.error = exc
                fail_fast()
            outcome.cancelled = token.cancel_requested
            if outcome.cancelled:
                outcome.cancel_reason = token.cancel_reason() or "cancelled"
            outcome.wall_time = time.perf_counter() - start
            outcome.solver_calls = stats_scope.stats.total
            outcome.solver_time = stats_scope.stats.time_total
            if obs.tracing_enabled():
                span.set(
                    cost=outcome.cost,
                    cancelled=outcome.cancelled,
                    cancel_reason=outcome.cancel_reason,
                    solver_calls=outcome.solver_calls,
                )
        outcomes[idx] = outcome
        note_done()

    def _reduce(
        self, outcomes: List[Optional[_BranchOutcome]], incumbent: Optional[Incumbent]
    ) -> StageResult:
        winner: Optional[_BranchOutcome] = None
        for outcome in outcomes:  # canonical order: first strict minimum wins
            if outcome is None or outcome.schedule is None:
                continue
            if winner is None or outcome.cost < winner.cost:
                winner = outcome
        telemetry = {
            "race_branches": {
                o.token: {
                    "cost": o.cost,
                    "wall_time": o.wall_time,
                    "solver_calls": o.solver_calls,
                    "solver_time": o.solver_time,
                    "cancelled": o.cancelled,
                    "cancel_reason": o.cancel_reason,
                    "winner": winner is not None and o is winner,
                    "started": not o.skipped,
                    "inapplicable": o.inapplicable,
                }
                for o in outcomes
                if o is not None
            },
            "race_winner": winner.token if winner is not None else "",
            "race_cancelled": sum(
                1 for o in outcomes if o is not None and o.cancelled
            ),
        }
        solve_time = sum(o.solve_time for o in outcomes if o is not None)
        if winner is None:
            # no branch applied (or none improved anything): keep the
            # incumbent when there is one, report infinite cost otherwise
            reasons = "; ".join(
                o.inapplicable for o in outcomes if o is not None and o.inapplicable
            )
            status = "race: no branch applicable" + (f" ({reasons})" if reasons else "")
            return StageResult(
                stage=self.spec_token(),
                schedule=incumbent.schedule if incumbent is not None else None,
                cost=incumbent.cost if incumbent is not None else math.inf,
                status=status,
                sticky_status=True,
                solve_time=solve_time,
                telemetry=telemetry,
            )
        status = f"race[{winner.token}] {winner.status}".rstrip()
        return StageResult(
            stage=self.spec_token(),
            schedule=winner.schedule,
            cost=winner.cost,
            status=status,
            sticky_status=True,
            solve_time=solve_time,
            extras=dict(winner.extras),
            telemetry=telemetry,
        )


def _race_build(options):  # pragma: no cover - build_composite always wins
    raise ConfigurationError(
        "stage 'race' needs at least two branches, e.g. 'race(ilp@bnb, ilp@scipy)'"
    )


register_stage(
    StageFactory(
        name="race",
        description="concurrent branch race from one incumbent: "
        "race(a,b,...) fans the incumbent out to every branch "
        "(sub-pipelines); winner = lowest cost, ties by canonical branch "
        "order (deterministic under any worker count); losers are "
        "cancelled once the winner is provably decided",
        build=_race_build,
        build_composite=lambda args, options: RaceStage(args),
    )
)
