"""The pipeline spec mini-language and the legacy member-name aliases.

Grammar (whitespace-insensitive)::

    pipeline := stage ("|" stage)*
    stage    := name [ "(" key "=" value ("," key "=" value)* ")" ]
              | scheduler "+" policy           # two-stage shorthand

Examples::

    bspg+clairvoyant                    one two-stage heuristic
    bspg+clairvoyant|refine|ilp         heuristic -> local search -> exact ILP
    cilk+lru | refine(budget=500) | ilp(warm=objective)
    dac|refine                          divide-and-conquer, post-optimized

Parsing produces a :class:`PipelineSpec`; :func:`canonicalize` renders it
back into the canonical string (options sorted, defaults omitted,
``baseline`` auto-prepended when the first stage needs an incumbent), and
``parse(canonicalize(parse(s)))`` is a fixed point — property-tested in
``tests/property``.

**Backward compatibility.**  Every legacy portfolio member name
(``"bspg+clairvoyant"``, ``"ilp"``, ``"dac"``, ``"<member>+refine"`` …) is a
valid spec: :data:`LEGACY_MEMBER_SPECS` pins each one to the pipeline that
reproduces its historical behaviour *exactly* — in particular the legacy
``ilp``-backed members canonicalize with ``warm=objective`` (the historical
cost-only warm start), while newly written specs default to the full
warm-start-solution encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.pipeline.registry import get_stage_factory, make_stage
from repro.pipeline.stage import Stage
from repro.pipeline.stages import TWO_STAGE_POLICIES, TWO_STAGE_SCHEDULERS

#: Suffix naming the refined variant of a legacy member name.
REFINE_SUFFIX = "+refine"


@dataclass(frozen=True)
class StageSpec:
    """One parsed stage token: a registered stage name plus its options."""

    name: str
    options: Tuple[Tuple[str, str], ...] = ()

    def build(self) -> Stage:
        return make_stage(self.name, dict(self.options))

    def token(self) -> str:
        """Canonical token (delegated to the stage, which knows defaults)."""
        return self.build().spec_token()


@dataclass(frozen=True)
class PipelineSpec:
    """A parsed pipeline: an ordered tuple of stage specs."""

    stages: Tuple[StageSpec, ...]

    def canonical(self) -> str:
        return "|".join(spec.token() for spec in self.stages)

    def build_stages(self) -> List[Stage]:
        return [spec.build() for spec in self.stages]


# ----------------------------------------------------------------------
# legacy member names
# ----------------------------------------------------------------------
def _legacy_member_stages(name: str) -> Optional[List[StageSpec]]:
    """Stage sequence of a legacy portfolio member name (None: not one)."""
    name = name.strip().lower()
    refined = name.endswith(REFINE_SUFFIX)
    base = name[: -len(REFINE_SUFFIX)] if refined else name
    objective = (("warm", "objective"),)
    if base == "ilp":
        if refined:
            # the historical "ilp+refine": refine the baseline, seed the
            # holistic ILP with the refined incumbent, refine the result
            return [
                StageSpec("baseline"),
                StageSpec("refine"),
                StageSpec("ilp", objective),
                StageSpec("refine"),
            ]
        return [StageSpec("baseline"), StageSpec("ilp", objective)]
    if base in ("dac", "divide-and-conquer", "divide_and_conquer"):
        stages = [StageSpec("dac")]
        return stages + [StageSpec("refine")] if refined else stages
    scheduler, sep, policy = base.partition("+")
    if sep and scheduler in TWO_STAGE_SCHEDULERS and policy in TWO_STAGE_POLICIES:
        stages = [StageSpec(scheduler, (("policy", policy),))]
        return stages + [StageSpec("refine")] if refined else stages
    return None


def legacy_member_names() -> List[str]:
    """Every legacy member name (base members first, then refined variants)."""
    members = [
        f"{scheduler}+{policy}"
        for scheduler in TWO_STAGE_SCHEDULERS
        for policy in TWO_STAGE_POLICIES
    ]
    members += ["ilp", "dac"]
    return members + [member + REFINE_SUFFIX for member in members]


#: Legacy member name -> canonical pipeline spec string.
LEGACY_MEMBER_SPECS: Dict[str, str] = {}


def _build_legacy_table() -> None:
    for member in legacy_member_names():
        stages = _legacy_member_stages(member)
        assert stages is not None
        LEGACY_MEMBER_SPECS[member] = PipelineSpec(tuple(stages)).canonical()


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def _parse_stage_token(token: str, spec_text: str) -> StageSpec:
    token = token.strip()
    if not token:
        raise ConfigurationError(
            f"empty stage in pipeline spec {spec_text!r}; write 'a|b|c' with "
            f"one registered stage per segment"
        )
    options: List[Tuple[str, str]] = []
    name = token
    if "(" in token:
        name, _, rest = token.partition("(")
        if not rest.endswith(")"):
            raise ConfigurationError(
                f"malformed stage options in {token!r} (expected "
                f"'name(key=value,...)')"
            )
        body = rest[:-1].strip()
        if body:
            for item in body.split(","):
                key, sep, value = item.partition("=")
                if not sep or not key.strip() or not value.strip():
                    raise ConfigurationError(
                        f"malformed stage option {item.strip()!r} in {token!r} "
                        f"(expected 'key=value')"
                    )
                options.append((key.strip().lower(), value.strip().lower()))
    name = name.strip().lower()
    if "+" in name:
        scheduler, _, policy = name.partition("+")
        if any(key == "policy" for key, _ in options):
            raise ConfigurationError(
                f"stage {token!r} names a policy twice (shorthand and option)"
            )
        options.append(("policy", policy.strip()))
        name = scheduler.strip()
    # resolve aliases to the canonical name (and fail early on unknowns)
    factory = get_stage_factory(name)
    spec = StageSpec(factory.name, tuple(sorted(options)))
    spec.build()  # validate the options eagerly, at parse time
    return spec


def parse(text: str) -> PipelineSpec:
    """Parse a pipeline spec (or a legacy member name) into a PipelineSpec.

    Raises :class:`~repro.exceptions.ConfigurationError` for unknown stages,
    malformed options, or a stage needing an incumbent with nothing before
    it (in which case the ``baseline`` stage is auto-prepended instead of
    failing, matching the documented grammar).
    """
    if not str(text).strip():
        raise ConfigurationError("empty pipeline spec")
    text = str(text).strip()
    if "|" not in text:
        legacy = _legacy_member_stages(text)
        if legacy is not None:
            return PipelineSpec(tuple(legacy))
    stages = [_parse_stage_token(token, text) for token in text.split("|")]
    # auto-prepend the baseline when the first stage consumes an incumbent
    if stages and stages[0].build().requires_incumbent:
        stages.insert(0, StageSpec("baseline"))
    return PipelineSpec(tuple(stages))


def canonicalize(text: str) -> str:
    """The canonical spelling of a pipeline spec or legacy member name."""
    return parse(text).canonical()


def is_pipeline_spec(text: str) -> bool:
    """Whether ``text`` parses as a pipeline spec (or legacy member name)."""
    try:
        parse(text)
        return True
    except ConfigurationError:
        return False


_build_legacy_table()
