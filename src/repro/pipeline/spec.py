"""The pipeline spec mini-language and the legacy member-name aliases.

Grammar (whitespace-insensitive)::

    pipeline := stage ("|" stage)*
    stage    := name ["@" backend] [ "(" item ("," item)* ")" ]
              | scheduler "+" policy           # two-stage shorthand
    item     := key "=" value                  # an option ...
              | branch                         # ... or (composites only) a
                                               #     positional sub-spec
    branch   := stage ("|" stage)*             # e.g. race(a, b|c)

Examples::

    bspg+clairvoyant                    one two-stage heuristic
    bspg+clairvoyant|refine|ilp         heuristic -> local search -> exact ILP
    cilk+lru | refine(budget=500) | ilp(warm=objective)
    baseline|race(ilp@bnb, ilp@scipy)   backend race from one incumbent
    baseline|race(refine(seed=1,strategy=anneal), refine(seed=2,strategy=anneal))
    dac(max_part_size=8, budget=5s)     wall-clock stage budget (note the 's')

Three orthogonal spec features thread through every stage token:

* ``name@backend`` pins the ILP solver backend of one stage (sugar for the
  ``backend=`` option; canonicalized back to the ``@`` form);
* ``budget=<seconds>s`` — the ``s`` suffix distinguishes a *wall-clock*
  stage budget (enforced through the solver cancellation hooks; part of
  the canonical spec and hence of the engine job hash) from deterministic
  counter budgets like ``refine(budget=500)``;
* ``option={a,b,c}`` is **sweep syntax**: :func:`expand_spec` expands the
  cartesian product into one canonical spec per combination (e.g.
  ``dac(max_part_size={2,4,8})`` -> three member specs).  Sweeps are an
  expansion-time feature — :func:`parse` rejects a lone ``{``.

Parsing produces a :class:`PipelineSpec`; :func:`canonicalize` renders it
back into the canonical string (options sorted, defaults omitted, race
branches sorted, ``baseline`` auto-prepended when the first stage needs an
incumbent), and ``parse(canonicalize(parse(s)))`` is a fixed point —
property-tested in ``tests/property``.

**Backward compatibility.**  Every legacy portfolio member name
(``"bspg+clairvoyant"``, ``"ilp"``, ``"dac"``, ``"<member>+refine"`` …) is a
valid spec: :data:`LEGACY_MEMBER_SPECS` pins each one to the pipeline that
reproduces its historical behaviour *exactly* — in particular the legacy
``ilp``-backed members canonicalize with ``warm=objective`` (the historical
cost-only warm start), while newly written specs default to the full
warm-start-solution encoding.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.pipeline.registry import get_stage_factory, make_stage
from repro.pipeline.stage import Stage
from repro.pipeline.stages import TWO_STAGE_POLICIES, TWO_STAGE_SCHEDULERS

#: Suffix naming the refined variant of a legacy member name.
REFINE_SUFFIX = "+refine"

#: Spelling of a wall-clock stage budget value: seconds with an ``s`` suffix.
WALL_BUDGET_RE = re.compile(r"^([0-9]+(?:\.[0-9]+)?)s$")

_OPENERS = {"(": ")", "{": "}"}
_CLOSERS = {")": "(", "}": "{"}


# ----------------------------------------------------------------------
# nesting-aware text utilities (shared with repro.pipeline.composite)
# ----------------------------------------------------------------------
def split_top_level(text: str, sep: str) -> List[str]:
    """Split ``text`` on ``sep`` at bracket depth zero (``()`` and ``{}``)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in _OPENERS:
            depth += 1
        elif ch in _CLOSERS:
            depth -= 1
            if depth < 0:
                raise ConfigurationError(
                    f"unbalanced {ch!r} in pipeline spec fragment {text!r}"
                )
        if ch == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ConfigurationError(
            f"unbalanced brackets in pipeline spec fragment {text!r}"
        )
    parts.append("".join(current))
    return parts


def has_top_level(text: str, char: str) -> bool:
    """Whether ``char`` occurs in ``text`` at bracket depth zero."""
    depth = 0
    for ch in text:
        if ch in _OPENERS:
            depth += 1
        elif ch in _CLOSERS:
            depth -= 1
        elif ch == char and depth == 0:
            return True
    return False


def wall_budget_seconds(value: str) -> Optional[float]:
    """Seconds of a wall-clock budget value (``"2.5s"``), else ``None``."""
    match = WALL_BUDGET_RE.match(str(value).strip().lower())
    if match is None:
        return None
    seconds = float(match.group(1))
    if seconds < 1e-6:
        raise ConfigurationError(
            f"wall-clock stage budget must be at least 1 microsecond, "
            f"got {value!r}"
        )
    return seconds


def format_budget_seconds(seconds: float) -> str:
    """Canonical spelling of a wall-clock budget (``2.5 -> "2.5s"``).

    Fixed-point with microsecond resolution, never scientific notation —
    ``"%g"`` would render a generous ``1000000``-second budget as
    ``"1e+06s"``, which the grammar cannot parse, and would silently round
    budgets beyond six significant digits (diverging the enforced budget
    from the hashed one).
    """
    text = f"{float(seconds):.6f}".rstrip("0").rstrip(".")
    return f"{text}s"


@dataclass(frozen=True)
class StageSpec:
    """One parsed stage token: a registered stage name, its options and —
    for composite stages like ``race`` — positional sub-spec arguments."""

    name: str
    options: Tuple[Tuple[str, str], ...] = ()
    args: Tuple[str, ...] = ()

    def build(self) -> Stage:
        """Build the stage, applying any wall-clock ``budget=<s>s`` wrapper."""
        wall: Optional[float] = None
        plain: List[Tuple[str, str]] = []
        for key, value in self.options:
            seconds = wall_budget_seconds(value) if key == "budget" else None
            if seconds is not None:
                wall = seconds if wall is None else min(wall, seconds)
            else:
                plain.append((key, value))
        stage = make_stage(self.name, dict(plain), self.args)
        if wall is not None:
            from repro.pipeline.composite import BudgetedStage

            stage = BudgetedStage(stage, wall)
        return stage

    def token(self) -> str:
        """Canonical token (delegated to the stage, which knows defaults)."""
        return self.build().spec_token()


@dataclass(frozen=True)
class PipelineSpec:
    """A parsed pipeline: an ordered tuple of stage specs."""

    stages: Tuple[StageSpec, ...]

    def canonical(self) -> str:
        return "|".join(spec.token() for spec in self.stages)

    def build_stages(self) -> List[Stage]:
        return [spec.build() for spec in self.stages]


# ----------------------------------------------------------------------
# legacy member names
# ----------------------------------------------------------------------
def _legacy_member_stages(name: str) -> Optional[List[StageSpec]]:
    """Stage sequence of a legacy portfolio member name (None: not one)."""
    name = name.strip().lower()
    refined = name.endswith(REFINE_SUFFIX)
    base = name[: -len(REFINE_SUFFIX)] if refined else name
    objective = (("warm", "objective"),)
    if base == "ilp":
        if refined:
            # the historical "ilp+refine": refine the baseline, seed the
            # holistic ILP with the refined incumbent, refine the result
            return [
                StageSpec("baseline"),
                StageSpec("refine"),
                StageSpec("ilp", objective),
                StageSpec("refine"),
            ]
        return [StageSpec("baseline"), StageSpec("ilp", objective)]
    if base in ("dac", "divide-and-conquer", "divide_and_conquer"):
        stages = [StageSpec("dac")]
        return stages + [StageSpec("refine")] if refined else stages
    scheduler, sep, policy = base.partition("+")
    if sep and scheduler in TWO_STAGE_SCHEDULERS and policy in TWO_STAGE_POLICIES:
        stages = [StageSpec(scheduler, (("policy", policy),))]
        return stages + [StageSpec("refine")] if refined else stages
    return None


def legacy_member_names() -> List[str]:
    """Every legacy member name (base members first, then refined variants)."""
    members = [
        f"{scheduler}+{policy}"
        for scheduler in TWO_STAGE_SCHEDULERS
        for policy in TWO_STAGE_POLICIES
    ]
    members += ["ilp", "dac"]
    return members + [member + REFINE_SUFFIX for member in members]


#: Legacy member name -> canonical pipeline spec string.
LEGACY_MEMBER_SPECS: Dict[str, str] = {}


def _build_legacy_table() -> None:
    for member in legacy_member_names():
        stages = _legacy_member_stages(member)
        assert stages is not None
        LEGACY_MEMBER_SPECS[member] = PipelineSpec(tuple(stages)).canonical()


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def _parse_stage_token(token: str, spec_text: str, validate: bool = True) -> StageSpec:
    token = token.strip()
    if not token:
        raise ConfigurationError(
            f"empty stage in pipeline spec {spec_text!r}; write 'a|b|c' with "
            f"one registered stage per segment"
        )
    options: List[Tuple[str, str]] = []
    args: List[str] = []
    name = token
    if "(" in token:
        name, _, rest = token.partition("(")
        if not rest.endswith(")"):
            raise ConfigurationError(
                f"malformed stage options in {token!r} (expected "
                f"'name(key=value,...)')"
            )
        body = rest[:-1].strip()
        if body:
            for item in split_top_level(body, ","):
                item = item.strip()
                if not item:
                    raise ConfigurationError(
                        f"empty item in stage options of {token!r}"
                    )
                if not has_top_level(item, "="):
                    # a positional argument: a sub-spec of a composite stage
                    args.append(item.lower())
                    continue
                key, _, value = item.partition("=")
                key, value = key.strip().lower(), value.strip().lower()
                if not key or not value:
                    raise ConfigurationError(
                        f"malformed stage option {item!r} in {token!r} "
                        f"(expected 'key=value')"
                    )
                if "{" in value:
                    raise ConfigurationError(
                        f"sweep value {value!r} in {token!r} must be expanded "
                        f"first; use repro.pipeline.expand_spec (the CLI "
                        f"--pipeline flags expand sweeps automatically)"
                    )
                options.append((key, value))
    name = name.strip().lower()
    if "@" in name:
        # 'ilp@scipy' pins the stage's solver backend (sugar for backend=)
        name, _, pinned = name.partition("@")
        name, pinned = name.strip(), pinned.strip()
        if not pinned:
            raise ConfigurationError(
                f"stage {token!r}: empty backend after '@' (write e.g. "
                f"'ilp@scipy')"
            )
        if any(key == "backend" for key, _ in options):
            raise ConfigurationError(
                f"stage {token!r} names a backend twice ('@' and option)"
            )
        options.append(("backend", pinned))
    if "+" in name:
        scheduler, _, policy = name.partition("+")
        if any(key == "policy" for key, _ in options):
            raise ConfigurationError(
                f"stage {token!r} names a policy twice (shorthand and option)"
            )
        options.append(("policy", policy.strip()))
        name = scheduler.strip()
    # resolve aliases to the canonical name (and fail early on unknowns)
    factory = get_stage_factory(name)
    spec = StageSpec(factory.name, tuple(sorted(options)), tuple(args))
    if validate:
        # validate the options/branches eagerly, at parse time; callers
        # that build the stage themselves right away (race branches) pass
        # validate=False to avoid constructing every stage twice
        spec.build()
    return spec


def parse(text: str) -> PipelineSpec:
    """Parse a pipeline spec (or a legacy member name) into a PipelineSpec.

    Raises :class:`~repro.exceptions.ConfigurationError` for unknown stages,
    malformed options, or a stage needing an incumbent with nothing before
    it (in which case the ``baseline`` stage is auto-prepended instead of
    failing, matching the documented grammar).
    """
    if not str(text).strip():
        raise ConfigurationError("empty pipeline spec")
    text = str(text).strip()
    if "|" not in text:
        legacy = _legacy_member_stages(text)
        if legacy is not None:
            return PipelineSpec(tuple(legacy))
    stages = [
        _parse_stage_token(token, text) for token in split_top_level(text, "|")
    ]
    # auto-prepend the baseline when the first stage consumes an incumbent
    if stages and stages[0].build().requires_incumbent:
        stages.insert(0, StageSpec("baseline"))
    return PipelineSpec(tuple(stages))


def canonicalize(text: str) -> str:
    """The canonical spelling of a pipeline spec or legacy member name."""
    return parse(text).canonical()


def is_pipeline_spec(text: str) -> bool:
    """Whether ``text`` parses as a pipeline spec (or legacy member name)."""
    try:
        parse(text)
        return True
    except ConfigurationError:
        return False


# ----------------------------------------------------------------------
# sweep expansion
# ----------------------------------------------------------------------
def expand_spec(text: str) -> List[str]:
    """Expand sweep syntax into canonical specs (one per combination).

    ``option={a,b,c}`` multiplies the spec once per listed value;
    several sweeps in one spec expand to their cartesian product::

        >>> expand_spec("dac(max_part_size={2,4,8})")
        ['dac(max_part_size=2)', 'dac(max_part_size=4)', 'dac(max_part_size=8)']

    A sweep-free spec returns its canonical form as a one-element list.
    Duplicate expansions (spellings canonicalizing identically) are
    dropped, preserving first-occurrence order.  Malformed sweeps
    (unbalanced or empty braces) raise
    :class:`~repro.exceptions.ConfigurationError`.
    """
    text = str(text).strip()
    open_at = text.find("{")
    if open_at < 0:
        return [canonicalize(text)]
    close_at = text.find("}", open_at)
    if close_at < 0:
        raise ConfigurationError(f"unbalanced '{{' in sweep spec {text!r}")
    values = [v.strip() for v in text[open_at + 1 : close_at].split(",")]
    values = [v for v in values if v]
    if not values:
        raise ConfigurationError(
            f"empty sweep '{{}}' in spec {text!r}; write e.g. "
            f"'dac(max_part_size={{2,4,8}})'"
        )
    expanded: List[str] = []
    seen = set()
    for value in values:
        for spec in expand_spec(text[:open_at] + value + text[close_at + 1 :]):
            if spec not in seen:
                seen.add(spec)
                expanded.append(spec)
    return expanded


def with_default_budget(text: str, seconds: float) -> str:
    """The canonical spec with a wall-clock budget on every unbudgeted stage.

    Backs the CLI's ``--budget`` flag: each stage without an explicit
    ``budget=<s>s`` option gains one (stages that already carry a wall
    budget keep theirs — per-stage spec overrides win).  Returns the
    canonical spelling, so the budget is part of the engine job hash.
    """
    seconds = float(seconds)
    if seconds <= 0:
        raise ConfigurationError("--budget must be positive (seconds)")
    budget = ("budget", format_budget_seconds(seconds))
    stages: List[StageSpec] = []
    for stage in parse(text).stages:
        budgeted = any(
            key == "budget" and wall_budget_seconds(value) is not None
            for key, value in stage.options
        )
        if budgeted:
            stages.append(stage)
        else:
            stages.append(
                StageSpec(
                    stage.name, tuple(sorted(stage.options + (budget,))), stage.args
                )
            )
    return PipelineSpec(tuple(stages)).canonical()


_build_legacy_table()
