"""The generic pipeline runner.

:class:`Pipeline` executes a parsed :class:`~repro.pipeline.spec.PipelineSpec`
on one instance: stages run in order, each stage's best schedule becomes the
next stage's warm-start incumbent, and per-stage telemetry (wall time,
solver calls, costs) is collected along the way.  The result reduces to the
exact :class:`~repro.experiments.runner.InstanceResult` shape the experiment
engine and the portfolio consume, so every portfolio member is now *one
declarative spec executed by this runner* instead of a hand-written dispatch
branch.

**Bound-aware pruning** is decided per stage: before a prunable stage
(``ilp``, ``refine``) runs, the incumbent cost is compared against the
instance's :func:`repro.theory.bounds.instance_lower_bound`; when the
incumbent is provably within ``prune_gap`` of optimal the stage is skipped
(cost-neutrally at the default gap 0, since those stages never increase
cost) and the skip reason lands in the combined status.

**Shared-prefix reuse**: inside a :func:`stage_reuse_scope` (the portfolio
activates one per batch), completed stage prefixes are cached by
``(instance digest, config digest, prune gap, canonical stage prefix)``, so
``"m"`` and ``"m|refine"`` evaluate the shared ``"m"`` prefix once per
instance.  Reuse never changes results — a cached prefix is bit-identical
to recomputing it — it only saves work, and the saved solver calls are
reported in the portfolio table footer.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.dag.graph import ComputationalDag
from repro.exceptions import ConfigurationError
from repro.model.instance import MbspInstance
from repro.pipeline.spec import PipelineSpec, parse
from repro.pipeline.stage import (
    PRUNED_STATUS_PREFIX,
    Incumbent,
    StageContext,
    StageResult,
)


# ----------------------------------------------------------------------
# shared-prefix reuse
# ----------------------------------------------------------------------
@dataclass
class StageReuseStats:
    """Bookkeeping of one reuse scope (one portfolio batch)."""

    runs: int = 0
    prefix_hits: int = 0
    stages_reused: int = 0
    solver_calls_saved: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.stages_reused} stage result(s) reused across "
            f"{self.prefix_hits} pipeline run(s), "
            f"~{self.solver_calls_saved:g} solver call(s) saved"
        )


@dataclass
class _PrefixEntry:
    results: Tuple[StageResult, ...]
    incumbent: Optional[Incumbent]
    solver_calls: float


class StageReuseCache:
    """Per-scope cache of completed stage prefixes."""

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self.stats = StageReuseStats()
        self._entries: Dict[tuple, _PrefixEntry] = {}

    def get(self, key: tuple) -> Optional[_PrefixEntry]:
        return self._entries.get(key)

    def put(self, key: tuple, entry: _PrefixEntry) -> None:
        if key in self._entries:
            return
        if len(self._entries) >= self.max_entries:
            return  # a full cache stops growing; correctness is unaffected
        self._entries[key] = entry


_ACTIVE_CACHE: Optional[StageReuseCache] = None


@contextmanager
def stage_reuse_scope():
    """Activate shared-prefix reuse for all pipelines run inside the scope.

    Yields the :class:`StageReuseCache`, whose ``stats`` describe the saved
    work when the scope closes.  Scopes are per process: jobs fanned out by
    the parallel experiment engine run in worker processes and do not see
    the parent's scope (results are identical either way; only the savings
    differ).
    """
    global _ACTIVE_CACHE
    cache = StageReuseCache()
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    try:
        yield cache
    finally:
        _ACTIVE_CACHE = previous


def _content_key(dag_data: dict, config) -> str:
    payload = {"dag": dag_data, "config": asdict(config)}
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class PipelineResult:
    """Outcome of one pipeline on one instance."""

    spec: str
    instance_name: str
    num_nodes: int
    stages: List[StageResult] = field(default_factory=list)
    schedule: Optional["object"] = None
    cost: float = math.inf
    inapplicable: str = ""
    stages_reused: int = 0

    @property
    def applicable(self) -> bool:
        return not self.inapplicable

    @property
    def pruned(self) -> bool:
        return any(stage.skipped for stage in self.stages)

    @property
    def baseline_cost(self) -> float:
        if not self.stages:
            return math.inf
        first = self.stages[0]
        if first.reported_baseline_cost is not None:
            return first.reported_baseline_cost
        return first.cost

    def status(self) -> str:
        if self.inapplicable:
            return f"inapplicable: {self.inapplicable}"
        if not self.stages:
            return ""
        parts = [
            stage.status
            for stage in self.stages[:-1]
            if stage.sticky_status and stage.status
        ]
        last = self.stages[-1]
        if last.status:
            parts.append(last.status)
        return "; ".join(parts)

    def to_instance_result(self):
        """Reduce to the engine's :class:`InstanceResult` shape.

        The mapping reproduces the historical portfolio-member results
        byte-for-byte for every legacy member spec (pinned by the golden
        equivalence tests): both cost fields, the combined status, merged
        ``extra_costs`` with the final ``member_cost``, and the summed ILP
        solve time.
        """
        from repro.experiments.runner import InstanceResult

        if self.inapplicable:
            return InstanceResult(
                instance_name=self.instance_name,
                num_nodes=self.num_nodes,
                baseline_cost=math.inf,
                ilp_cost=math.inf,
                solver_status=self.status(),
                extra_costs={"member_cost": math.inf},
            )
        extras: Dict[str, float] = {}
        for stage in self.stages:
            extras.update(stage.extras)
        extras["member_cost"] = self.cost
        result = InstanceResult(
            instance_name=self.instance_name,
            num_nodes=self.num_nodes,
            baseline_cost=self.baseline_cost,
            ilp_cost=self.cost,
            solver_status=self.status(),
            solve_time=sum(stage.solve_time for stage in self.stages),
            extra_costs=extras,
        )
        if self.stages_reused:
            # diagnostics only: solver_stats is excluded from fingerprints,
            # so reuse can never make a cached run look different
            result.solver_stats["pipeline_stages_reused"] = float(self.stages_reused)
        return result

    def describe(self) -> str:
        """Multi-line per-stage telemetry table (CLI: ``repro pipeline run``)."""
        lines = [f"pipeline {self.spec!r} on {self.instance_name}"]
        if self.inapplicable:
            lines.append(f"  inapplicable: {self.inapplicable}")
            return "\n".join(lines)
        lines.extend(describe_stage_table(self.stages))
        lines.append(f"  final cost: {self.cost:g}")
        return "\n".join(lines)


def describe_stage_table(stages: Sequence[StageResult]) -> List[str]:
    """Per-stage telemetry rows (the ``repro pipeline run`` table).

    Every row shows the stage's *canonical* spec token (composite
    ``race(...)``/``budget=`` tokens included, sized to the longest token
    rather than a fixed column).  Stages that were skipped/pruned show
    ``-`` for wall time and solver calls — a skip is not a
    zero-wall-clock, zero-solve run — and race stages get indented
    per-branch sub-rows (wall time, solver calls, winner / cancel
    reason).
    """
    width = max([24] + [len(stage.stage) for stage in stages])
    lines: List[str] = []
    cost_in: Optional[float] = None
    for stage in stages:
        if stage.skipped:
            wall_text = f"{'-':>6s} "
            calls_text = "-"
            note = "skipped (bound pruning)"
        else:
            wall_text = f"{stage.telemetry.get('wall_time', 0.0):6.2f}s"
            calls_text = f"{stage.telemetry.get('solver_calls', 0.0):g}"
            note = stage.status
        arrow = (
            f"{cost_in:g} -> {stage.cost:g}" if cost_in is not None
            else f"{stage.cost:g}"
        )
        lines.append(
            f"  {stage.stage:<{width}s} cost {arrow:<20s} "
            f"[{wall_text}, {calls_text} solve(s)] {note}"
        )
        branches = stage.telemetry.get("race_branches") or {}
        if isinstance(branches, dict):
            for token in sorted(branches):
                branch = branches[token]
                if not isinstance(branch, dict):
                    continue
                if branch.get("winner"):
                    flag = "winner"
                elif not branch.get("started", True):
                    flag = "not started: " + (
                        branch.get("cancel_reason") or "race winner decided"
                    )
                elif branch.get("inapplicable"):
                    flag = "inapplicable"
                elif branch.get("cancelled"):
                    flag = "cancelled: " + (branch.get("cancel_reason") or "cancelled")
                else:
                    flag = "lost"
                cost = branch.get("cost", math.inf)
                cost_text = f"{cost:g}" if math.isfinite(cost) else "-"
                lines.append(
                    f"    - {token:<{max(2, width - 4)}s} cost {cost_text:<8s} "
                    f"[{branch.get('wall_time', 0.0):6.2f}s, "
                    f"{branch.get('solver_calls', 0):g} solve(s)] {flag}"
                )
        cost_in = stage.cost
    return lines


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class Pipeline:
    """A composable scheduler pipeline, built from a spec."""

    def __init__(self, spec: Union[str, PipelineSpec]) -> None:
        self.spec: PipelineSpec = parse(spec) if isinstance(spec, str) else spec
        self.stages = self.spec.build_stages()
        self._tokens = [stage.spec_token() for stage in self.stages]
        # equals self.spec.canonical(), derived from the already-built stages
        # to avoid constructing every stage a second time
        self.canonical = "|".join(self._tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipeline({self.canonical!r})"

    # ------------------------------------------------------------------
    def run(
        self,
        dag: Optional[ComputationalDag] = None,
        config=None,
        *,
        instance: Optional[MbspInstance] = None,
        prune_gap: Optional[float] = None,
    ) -> PipelineResult:
        """Run the pipeline on one instance and return a :class:`PipelineResult`.

        Provide either a ``dag`` (the instance is built from ``config``) or
        a ready ``instance``.  ``prune_gap`` enables per-stage bound-aware
        pruning (``None`` disables it).
        """
        from repro.experiments.runner import ExperimentConfig
        from repro.ilp.backends import solver_call_stats

        if config is None:
            config = ExperimentConfig(name="pipeline")
        if instance is None:
            if dag is None:
                raise ConfigurationError("Pipeline.run needs a dag or an instance")
            instance = config.instance_for(dag)
        dag = instance.dag

        result = PipelineResult(
            spec=self.canonical,
            instance_name=dag.name,
            num_nodes=dag.num_nodes,
        )
        ctx = StageContext(instance=instance, config=config, prune_gap=prune_gap)

        cache = _ACTIVE_CACHE
        prefix_keys: List[tuple] = []
        if cache is not None:
            cache.stats.runs += 1
            content = _content_key(_dag_key_data(dag), config)
            running = []
            any_prunable = False
            for stage, token in zip(self.stages, self._tokens):
                running.append(token)
                any_prunable = any_prunable or stage.prunable
                # a prefix without prunable stages is prune-gap-independent,
                # so "m" (submitted without a gap) and "m|refine" (with one)
                # share the "m" prefix entry
                gap_key = prune_gap if any_prunable else None
                prefix_keys.append((content, gap_key, "|".join(running)))

        incumbent: Optional[Incumbent] = None
        start_index = 0
        solver_calls_so_far = 0.0
        if cache is not None:
            for k in range(len(self.stages), 0, -1):
                entry = cache.get(prefix_keys[k - 1])
                if entry is not None:
                    result.stages.extend(entry.results)
                    incumbent = entry.incumbent
                    start_index = k
                    solver_calls_so_far = entry.solver_calls
                    result.stages_reused = k
                    cache.stats.prefix_hits += 1
                    cache.stats.stages_reused += k
                    cache.stats.solver_calls_saved += entry.solver_calls
                    break

        pipeline_span = obs.NULL_SCOPE
        if obs.tracing_enabled():
            pipeline_span = obs.trace_span(
                "pipeline",
                category="pipeline",
                spec=self.canonical,
                instance=dag.name,
                stages_reused=result.stages_reused,
            )
        with pipeline_span:
            skip_reported = any(
                stage.skipped and stage.status for stage in result.stages
            )
            for i in range(start_index, len(self.stages)):
                stage = self.stages[i]
                token = self._tokens[i]
                if stage.requires_incumbent and incumbent is None:
                    raise ConfigurationError(
                        f"stage {token!r} needs an incumbent schedule; start the "
                        f"pipeline with a schedule-producing stage (e.g. 'baseline')"
                    )
                if (
                    ctx.prune_enabled
                    and stage.prunable
                    and incumbent is not None
                    and incumbent.cost
                    <= (1.0 + ctx.prune_gap) * ctx.lower_bound() + 1e-9
                ):
                    bound = ctx.lower_bound()
                    noun, phrase = stage.prune_label
                    status = ""
                    extras: Dict[str, float] = {}
                    if not skip_reported:
                        status = (
                            f"{PRUNED_STATUS_PREFIX} {noun} {incumbent.cost:g} is "
                            f"within {ctx.prune_gap:.1%} of the lower bound "
                            f"{bound:g}; {phrase}"
                        )
                        extras = {"lower_bound": bound, "pruned": 1.0}
                        skip_reported = True
                    if obs.tracing_enabled():
                        with obs.trace_span(
                            "stage",
                            category="pipeline",
                            spec=token,
                            skipped=True,
                            reason="bound pruning",
                            lower_bound=bound,
                        ):
                            pass
                        obs.count("pipeline.stages_pruned")
                    result.stages.append(
                        StageResult(
                            stage=token,
                            schedule=incumbent.schedule,
                            cost=incumbent.cost,
                            status=status,
                            sticky_status=bool(status),
                            extras=extras,
                            skipped=True,
                        )
                    )
                    if cache is not None:
                        cache.put(
                            prefix_keys[i],
                            _PrefixEntry(
                                tuple(result.stages), incumbent, solver_calls_so_far
                            ),
                        )
                    continue
                wall_start = time.perf_counter()
                calls_before = solver_call_stats().snapshot()
                with obs.trace_span(
                    "stage", category="pipeline", spec=token
                ) as stage_span:
                    try:
                        stage_result = stage.run(instance, incumbent, ctx)
                    except ConfigurationError as exc:
                        if not getattr(
                            stage, "config_error_means_inapplicable", False
                        ):
                            # a genuine misconfiguration (bad solver budgets,
                            # invalid step caps, ...) must fail the caller, not
                            # be swallowed as an infinitely expensive member
                            raise
                        # e.g. the DFS first stage on a multi-processor
                        # instance: the pipeline simply does not compete here
                        stage_span.set(inapplicable=str(exc))
                        result.inapplicable = str(exc)
                        result.schedule = None
                        result.cost = math.inf
                        return result
                    delta = solver_call_stats().delta_since(calls_before)
                    stage_result.telemetry.setdefault(
                        "wall_time", time.perf_counter() - wall_start
                    )
                    stage_result.telemetry["solver_calls"] = delta.get(
                        "solver_calls", 0.0
                    )
                    stage_result.telemetry["solver_time"] = delta.get(
                        "solver_time", 0.0
                    )
                    stage_result.telemetry["cost_in"] = (
                        incumbent.cost if incumbent is not None else None
                    )
                    stage_result.telemetry["cost_out"] = stage_result.cost
                    if obs.tracing_enabled():
                        stage_span.set(
                            cost_in=stage_result.telemetry["cost_in"],
                            cost_out=stage_result.cost,
                            solver_calls=delta.get("solver_calls", 0.0),
                        )
                        obs.observe(
                            "pipeline.stage_time",
                            stage_result.telemetry["wall_time"],
                        )
                solver_calls_so_far += delta.get("solver_calls", 0.0)
                result.stages.append(stage_result)
                if stage_result.schedule is not None:
                    incumbent = Incumbent(
                        schedule=stage_result.schedule,
                        cost=stage_result.cost,
                        source=token,
                    )
                if cache is not None:
                    cache.put(
                        prefix_keys[i],
                        _PrefixEntry(
                            tuple(result.stages), incumbent, solver_calls_so_far
                        ),
                    )

            result.schedule = incumbent.schedule if incumbent is not None else None
            result.cost = result.stages[-1].cost if result.stages else math.inf
            return result


def _dag_key_data(dag: ComputationalDag) -> dict:
    from repro.dag.io import dag_to_dict

    return dag_to_dict(dag)


def run_pipeline(
    spec: Union[str, PipelineSpec],
    dag: ComputationalDag,
    config=None,
    prune_gap: Optional[float] = None,
) -> PipelineResult:
    """One-shot convenience wrapper: parse, build and run a pipeline."""
    return Pipeline(spec).run(dag, config, prune_gap=prune_gap)
