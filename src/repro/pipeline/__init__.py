"""First-class composable scheduler pipelines (``repro.pipeline``).

The package that turns the paper's experiment recipes into one abstraction:

* :class:`Stage` / :class:`StageResult` — a stage consumes the incumbent
  schedule and produces a better one (plus per-stage telemetry);
* the stage **registry** (:func:`register_stage`, :func:`available_stages`)
  with built-in stages: the two-stage heuristics (``bspg``/``cilk``/``etf``/
  ``dfs``/``bsp-ilp`` × cache policies), ``baseline``, ``ilp`` (holistic,
  warm-started from the incumbent — including a full warm-start *solution*
  via the schedule→ILP-variable encoder), ``refine`` and ``dac``;
* the spec mini-language — ``"bspg+clairvoyant|refine|ilp"`` — with a
  parse/canonicalize round trip and full backward compatibility for every
  legacy portfolio member name (:data:`LEGACY_MEMBER_SPECS`);
* :class:`Pipeline` — the generic runner threading each stage's best
  schedule into the next, with per-stage bound-aware pruning and
  shared-prefix reuse (:func:`stage_reuse_scope`).

Quick start::

    >>> from repro.pipeline import run_pipeline
    >>> result = run_pipeline("bspg+clairvoyant|refine|ilp", dag, config)
    >>> result.cost, result.status()
"""

from repro.pipeline.stage import (
    PRUNED_STATUS_PREFIX,
    Incumbent,
    Stage,
    StageContext,
    StageResult,
    schedule_digest,
)
from repro.pipeline.registry import (
    StageFactory,
    available_stages,
    get_stage_factory,
    make_stage,
    register_stage,
    stage_descriptions,
)
from repro.pipeline.stages import (
    TWO_STAGE_POLICIES,
    TWO_STAGE_SCHEDULERS,
    BaselineStage,
    DacStage,
    IlpStage,
    RefineStage,
    TwoStageStage,
)
from repro.pipeline.spec import (
    LEGACY_MEMBER_SPECS,
    REFINE_SUFFIX,
    PipelineSpec,
    StageSpec,
    canonicalize,
    expand_spec,
    is_pipeline_spec,
    legacy_member_names,
    parse,
    with_default_budget,
)
from repro.pipeline.composite import (
    EXAMPLE_RACE_SPECS,
    BudgetedStage,
    RaceStage,
)
from repro.pipeline.pipeline import (
    Pipeline,
    PipelineResult,
    StageReuseCache,
    StageReuseStats,
    describe_stage_table,
    run_pipeline,
    stage_reuse_scope,
)

__all__ = [
    "PRUNED_STATUS_PREFIX",
    "Incumbent",
    "Stage",
    "StageContext",
    "StageResult",
    "schedule_digest",
    "StageFactory",
    "available_stages",
    "get_stage_factory",
    "make_stage",
    "register_stage",
    "stage_descriptions",
    "TWO_STAGE_POLICIES",
    "TWO_STAGE_SCHEDULERS",
    "BaselineStage",
    "DacStage",
    "IlpStage",
    "RefineStage",
    "TwoStageStage",
    "LEGACY_MEMBER_SPECS",
    "REFINE_SUFFIX",
    "PipelineSpec",
    "StageSpec",
    "canonicalize",
    "expand_spec",
    "is_pipeline_spec",
    "legacy_member_names",
    "parse",
    "with_default_budget",
    "EXAMPLE_RACE_SPECS",
    "BudgetedStage",
    "RaceStage",
    "Pipeline",
    "PipelineResult",
    "StageReuseCache",
    "StageReuseStats",
    "describe_stage_table",
    "run_pipeline",
    "stage_reuse_scope",
]
