"""Two-stage conversion: BSP schedule + eviction policy -> valid MBSP schedule.

This implements the conversion described in Section 4 of the paper: given a
BSP schedule produced by a first-stage scheduler (which ignores the memory
bound), every BSP compute phase is split into maximally long segments of
compute steps that can be executed without new I/O, and the segments are
interleaved with save/delete/load phases chosen by a cache-management policy
(clairvoyant or LRU).  The result is a valid MBSP schedule on which the
synchronous/asynchronous cost functions can be evaluated and which also
serves as the initial solution of the ILP-based scheduler.

Conversion rules
----------------
* A value computed on processor ``p`` is saved to slow memory in the same
  superstep it is computed in if it is a sink or has a consumer on another
  processor ("creation save").
* When a value must be evicted while it is still dirty (not yet in slow
  memory) and will be needed again locally, it is saved first ("write-back").
* Values that are never needed again are preferred eviction victims under the
  clairvoyant policy (their next use is infinitely far away).
* Source nodes are never computed; they are loaded from slow memory where
  needed.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.exceptions import InfeasibleInstanceError, ScheduleError
from repro.bsp.schedule import BspSchedule
from repro.cache.policies import CacheEntryInfo, ClairvoyantPolicy, EvictionPolicy
from repro.model.instance import MbspInstance
from repro.model.pebbling import Operation, compute_op, delete_op
from repro.model.schedule import MbspSchedule, ProcessorSuperstep, Superstep

_INF = float("inf")


@dataclass
class _Segment:
    """A maximal run of compute steps of one processor inside one BSP superstep."""

    group: int
    compute_ops: List[Operation] = field(default_factory=list)
    creation_saves: List[NodeId] = field(default_factory=list)


@dataclass
class _Prep:
    """The I/O block (saves, deletions, loads) preparing one segment."""

    saves: List[NodeId] = field(default_factory=list)
    deletes: List[NodeId] = field(default_factory=list)
    loads: List[NodeId] = field(default_factory=list)


class _ProcessorConverter:
    """Simulates one processor's cache while splitting its compute sequence."""

    def __init__(
        self,
        dag: ComputationalDag,
        proc: int,
        sequence: List[Tuple[int, NodeId]],
        placement: Dict[NodeId, int],
        cache_size: float,
        policy: EvictionPolicy,
        required_in_slow_memory: Optional[Set[NodeId]] = None,
    ) -> None:
        self.dag = dag
        self.proc = proc
        self.sequence = sequence
        self.placement = placement
        self.cache_size = cache_size
        self.policy = policy
        self.required_in_slow_memory = set(required_in_slow_memory or ())

        self.cache: Dict[NodeId, float] = {}
        self.used = 0.0
        self.blue_local: Set[NodeId] = set()
        self.last_use: Dict[NodeId, int] = {}
        self.insertion: Dict[NodeId, int] = {}
        self.pending_save: Set[NodeId] = set()

        # positions in this processor's sequence where each value is consumed
        self.use_positions: Dict[NodeId, List[int]] = {}
        for idx, (_group, node) in enumerate(sequence):
            for parent in dag.parents(node):
                self.use_positions.setdefault(parent, []).append(idx)

        # values that must be saved right after being computed: sinks, and
        # values consumed by another processor
        self.needs_creation_save: Dict[NodeId, bool] = {}
        for _group, node in sequence:
            needed = (
                dag.is_sink(node)
                or node in self.required_in_slow_memory
                or any(
                    placement.get(child, proc) != proc for child in dag.children(node)
                )
            )
            self.needs_creation_save[node] = needed

        self.segments: List[_Segment] = []
        self.preps: List[_Prep] = []

    # ------------------------------------------------------------------
    # cache bookkeeping helpers
    # ------------------------------------------------------------------
    def _is_blue(self, node: NodeId) -> bool:
        """Whether ``node`` is in slow memory from this processor's viewpoint."""
        if self.dag.is_source(node):
            return True
        if node in self.blue_local:
            return True
        # values computed on another processor are creation-saved there,
        # because this processor consumes them
        return self.placement.get(node, self.proc) != self.proc

    def _next_use(self, node: NodeId, position: int) -> float:
        """Index of the next local consumption of ``node`` at or after ``position``."""
        uses = self.use_positions.get(node)
        if not uses:
            return _INF
        idx = bisect.bisect_left(uses, position)
        return uses[idx] if idx < len(uses) else _INF

    def _entry_info(self, node: NodeId, position: int) -> CacheEntryInfo:
        return CacheEntryInfo(
            node=node,
            mu=self.dag.mu(node),
            next_use=self._next_use(node, position),
            last_use=self.last_use.get(node, -1),
            insertion=self.insertion.get(node, -1),
        )

    def _insert(self, node: NodeId, position: int) -> None:
        self.cache[node] = self.dag.mu(node)
        self.used += self.dag.mu(node)
        self.insertion[node] = position
        self.last_use[node] = position

    def _remove(self, node: NodeId) -> None:
        self.used -= self.cache.pop(node)

    # ------------------------------------------------------------------
    # segment construction
    # ------------------------------------------------------------------
    def convert(self) -> Tuple[List[_Segment], List[_Prep]]:
        """Split the compute sequence into segments with their I/O preparations."""
        index = 0
        n = len(self.sequence)
        while index < n:
            prep = self._prepare_for(index)
            segment, index = self._run_segment(index)
            self.preps.append(prep)
            self.segments.append(segment)
        return self.segments, self.preps

    def _prepare_for(self, position: int) -> _Prep:
        """Build the save/delete/load block enabling the compute at ``position``."""
        group, node = self.sequence[position]
        prep = _Prep()
        parents = self.dag.parents(node)
        loads = [u for u in parents if u not in self.cache]
        load_mu = sum(self.dag.mu(u) for u in loads)
        pinned = set(parents) | {node}
        target = self.used + load_mu + self.dag.mu(node)
        while target > self.cache_size + 1e-9:
            candidates = [
                self._entry_info(u, position) for u in self.cache if u not in pinned
            ]
            if not candidates:
                raise InfeasibleInstanceError(
                    f"processor {self.proc}: cannot make room for node {node!r}; "
                    f"cache size {self.cache_size} is too small"
                )
            victim = self.policy.choose_victim(candidates)
            if not self._is_blue(victim) and self._next_use(victim, position) < _INF:
                prep.saves.append(victim)       # write-back before eviction
                self.blue_local.add(victim)
            prep.deletes.append(victim)
            self._remove(victim)
            target = self.used + load_mu + self.dag.mu(node)
        for u in loads:
            if not self._is_blue(u):
                raise ScheduleError(
                    f"processor {self.proc}: value {u!r} is required but is not "
                    f"available in slow memory (invalid BSP schedule?)"
                )
            prep.loads.append(u)
            self._insert(u, position)
        return prep

    def _run_segment(self, start: int) -> Tuple[_Segment, int]:
        """Execute compute steps greedily until new I/O would be required."""
        group = self.sequence[start][0]
        segment = _Segment(group=group)
        self.pending_save = set()
        index = start
        n = len(self.sequence)
        while index < n and self.sequence[index][0] == group:
            node = self.sequence[index][1]
            parents = self.dag.parents(node)
            if any(u not in self.cache for u in parents):
                break
            if not self._make_room_in_phase(node, index, segment):
                break
            segment.compute_ops.append(compute_op(node))
            self._insert(node, index)
            for u in parents:
                self.last_use[u] = index
            if self.needs_creation_save[node] and not self._is_blue(node):
                segment.creation_saves.append(node)
                self.blue_local.add(node)
                self.pending_save.add(node)
            index += 1
        self.pending_save = set()
        return segment, index

    def _make_room_in_phase(self, node: NodeId, position: int, segment: _Segment) -> bool:
        """Free space for ``node``'s output using compute-phase DELETEs only.

        Only *clean* values (already in slow memory, or never needed again)
        may be deleted inside a compute phase; dirty values would first need a
        save, which is only possible in the save phase and therefore ends the
        segment.  Returns False when not enough clean space can be freed.
        """
        need = self.dag.mu(node)
        if self.used + need <= self.cache_size + 1e-9:
            return True
        parents = set(self.dag.parents(node))
        while self.used + need > self.cache_size + 1e-9:
            candidates = []
            for u in self.cache:
                if u in parents or u == node or u in self.pending_save:
                    continue
                if self._is_blue(u) or self._next_use(u, position) == _INF:
                    candidates.append(self._entry_info(u, position))
            if not candidates:
                return False
            victim = self.policy.choose_victim(candidates)
            segment.compute_ops.append(delete_op(victim))
            self._remove(victim)
        return True


class TwoStageConverter:
    """Convert a BSP schedule into a valid MBSP schedule with a cache policy."""

    def __init__(self, policy: Optional[EvictionPolicy] = None) -> None:
        self.policy = policy or ClairvoyantPolicy()

    # ------------------------------------------------------------------
    def convert(
        self,
        bsp_schedule: BspSchedule,
        instance: MbspInstance,
        required_in_slow_memory: Optional[Set[NodeId]] = None,
    ) -> MbspSchedule:
        """Produce the MBSP schedule implementing ``bsp_schedule`` on ``instance``.

        ``required_in_slow_memory`` lists extra values (besides the sinks)
        that must carry a blue pebble when the schedule finishes; this is used
        by the divide-and-conquer scheduler whose sub-problems feed values to
        later sub-problems.
        """
        instance.require_feasible()
        bsp_schedule.validate()
        dag = instance.dag
        P = instance.num_processors
        if bsp_schedule.num_processors != P:
            raise ScheduleError(
                f"BSP schedule uses {bsp_schedule.num_processors} processors, "
                f"instance has {P}"
            )

        placement = {
            v: bsp_schedule.processor_of(v)
            for v in dag.nodes
            if not dag.is_source(v) and bsp_schedule.is_assigned(v)
        }

        # per-processor compute sequences tagged with their BSP superstep
        sequences: List[List[Tuple[int, NodeId]]] = []
        num_groups = bsp_schedule.num_supersteps
        for p in range(P):
            seq: List[Tuple[int, NodeId]] = []
            for s in range(num_groups):
                for v in bsp_schedule.cell(p, s):
                    seq.append((s, v))
            sequences.append(seq)

        all_segments: List[List[_Segment]] = []
        all_preps: List[List[_Prep]] = []
        for p in range(P):
            converter = _ProcessorConverter(
                dag,
                p,
                sequences[p],
                placement,
                instance.cache_size,
                self.policy,
                required_in_slow_memory=required_in_slow_memory,
            )
            segments, preps = converter.convert()
            all_segments.append(segments)
            all_preps.append(preps)

        return self._assemble(instance, num_groups, all_segments, all_preps)

    # ------------------------------------------------------------------
    def _assemble(
        self,
        instance: MbspInstance,
        num_groups: int,
        all_segments: List[List[_Segment]],
        all_preps: List[List[_Prep]],
    ) -> MbspSchedule:
        """Align per-processor segments into global supersteps.

        Each BSP superstep ``s`` becomes a block of ``G_s`` MBSP supersteps
        (the maximum number of segments any processor needs for it); a global
        "prologue" superstep 0 carries the loads for the very first segments.
        The I/O preparation of a segment is placed in the superstep directly
        preceding its compute phase.
        """
        P = instance.num_processors
        group_sizes = [0] * num_groups
        for p in range(P):
            counts = [0] * num_groups
            for seg in all_segments[p]:
                counts[seg.group] += 1
            for s in range(num_groups):
                group_sizes[s] = max(group_sizes[s], counts[s])

        offsets = [0] * num_groups
        running = 1  # superstep 0 is the prologue
        for s in range(num_groups):
            offsets[s] = running
            running += group_sizes[s]
        total_supersteps = running

        supersteps = [Superstep(P) for _ in range(total_supersteps)]

        for p in range(P):
            local_index_in_group: Dict[int, int] = {}
            for seg, prep in zip(all_segments[p], all_preps[p]):
                j = local_index_in_group.get(seg.group, 0)
                local_index_in_group[seg.group] = j + 1
                compute_step = offsets[seg.group] + j
                prep_step = offsets[seg.group] - 1 if j == 0 else compute_step - 1

                target = supersteps[compute_step][p]
                target.compute_phase.extend(seg.compute_ops)
                target.save_phase.extend(seg.creation_saves)

                prep_target = supersteps[prep_step][p]
                prep_target.save_phase.extend(prep.saves)
                prep_target.delete_phase.extend(prep.deletes)
                prep_target.load_phase.extend(prep.loads)

        schedule = MbspSchedule(instance, supersteps)
        return schedule.drop_empty_supersteps()


def two_stage_schedule(
    bsp_schedule: BspSchedule,
    instance: MbspInstance,
    policy: Optional[EvictionPolicy] = None,
    required_in_slow_memory: Optional[Set[NodeId]] = None,
) -> MbspSchedule:
    """Convenience wrapper: convert ``bsp_schedule`` with the given policy."""
    return TwoStageConverter(policy).convert(
        bsp_schedule, instance, required_in_slow_memory=required_in_slow_memory
    )
