"""Standalone memory-management (cache) simulator.

The memory-management stage of the two-stage approach can be studied in
isolation (this is the sub-problem whose NP-hardness Lemmas 5.1 and 5.2
establish): the compute steps of one processor are fixed, and the only
freedom is which values to load, keep and evict.  This module simulates a
single processor's cache over a fixed compute order under an eviction policy
and reports the resulting I/O cost — the executable form of that sub-problem,
used by tests, the Lemma 5.1 reduction experiments and the memory-pressure
example.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.dag.graph import ComputationalDag, NodeId
from repro.exceptions import InfeasibleInstanceError
from repro.cache.policies import CacheEntryInfo, ClairvoyantPolicy, EvictionPolicy

_INF = float("inf")


@dataclass
class CacheSimulationResult:
    """Outcome of simulating one processor's cache over a compute order."""

    load_volume: float
    save_volume: float
    num_loads: int
    num_saves: int
    num_evictions: int
    peak_usage: float
    io_cost: float
    load_events: List[NodeId] = field(default_factory=list)


class CacheSimulator:
    """Simulates the cache of a single processor for a fixed compute order."""

    def __init__(
        self,
        dag: ComputationalDag,
        cache_size: float,
        policy: Optional[EvictionPolicy] = None,
        g: float = 1.0,
    ) -> None:
        self.dag = dag
        self.cache_size = cache_size
        self.policy = policy or ClairvoyantPolicy()
        self.g = g

    # ------------------------------------------------------------------
    def run(self, compute_order: Sequence[NodeId], save_sinks: bool = True) -> CacheSimulationResult:
        """Execute ``compute_order`` and return the I/O accounting.

        ``compute_order`` must be a topological order of the non-source nodes
        it contains (each node's non-source parents must appear earlier or be
        reloadable, i.e. have been computed earlier in the order).
        """
        dag = self.dag
        computed_before: Set[NodeId] = set()
        for v in compute_order:
            if dag.is_source(v):
                raise InfeasibleInstanceError(f"source node {v!r} cannot be computed")
            for u in dag.parents(v):
                if not dag.is_source(u) and u not in computed_before:
                    raise InfeasibleInstanceError(
                        f"compute order is not feasible: {u!r} must precede {v!r}"
                    )
            computed_before.add(v)

        # positions where each value is used as an input
        use_positions: Dict[NodeId, List[int]] = {}
        for idx, v in enumerate(compute_order):
            for u in dag.parents(v):
                use_positions.setdefault(u, []).append(idx)

        cache: Dict[NodeId, float] = {}
        used = 0.0
        blue: Set[NodeId] = set(dag.sources())
        last_use: Dict[NodeId, int] = {}
        insertion: Dict[NodeId, int] = {}

        loads = saves = evictions = 0
        load_volume = save_volume = 0.0
        peak = 0.0
        load_events: List[NodeId] = []

        def next_use(node: NodeId, position: int) -> float:
            uses = use_positions.get(node)
            if not uses:
                return _INF
            i = bisect.bisect_left(uses, position)
            return uses[i] if i < len(uses) else _INF

        def evict_for(space: float, position: int, pinned: Set[NodeId]) -> None:
            nonlocal used, saves, save_volume, evictions
            while used + space > self.cache_size + 1e-9:
                candidates = [
                    CacheEntryInfo(
                        node=u,
                        mu=cache[u],
                        next_use=next_use(u, position),
                        last_use=last_use.get(u, -1),
                        insertion=insertion.get(u, -1),
                    )
                    for u in cache
                    if u not in pinned
                ]
                if not candidates:
                    raise InfeasibleInstanceError(
                        f"cache of size {self.cache_size} cannot hold the working set "
                        f"at position {position}"
                    )
                victim = self.policy.choose_victim(candidates)
                if victim not in blue and next_use(victim, position) < _INF:
                    blue.add(victim)            # write-back before eviction
                    saves += 1
                    save_volume += cache[victim]
                used -= cache.pop(victim)
                evictions += 1

        for position, v in enumerate(compute_order):
            parents = dag.parents(v)
            missing = [u for u in parents if u not in cache]
            pinned = set(parents) | {v}
            needed = sum(dag.mu(u) for u in missing) + dag.mu(v)
            evict_for(needed, position, pinned)
            for u in missing:
                if u not in blue:
                    raise InfeasibleInstanceError(
                        f"value {u!r} is needed but neither cached nor in slow memory"
                    )
                cache[u] = dag.mu(u)
                used += dag.mu(u)
                loads += 1
                load_volume += dag.mu(u)
                load_events.append(u)
                insertion[u] = position
                last_use[u] = position
            cache[v] = dag.mu(v)
            used += dag.mu(v)
            insertion[v] = position
            last_use[v] = position
            for u in parents:
                last_use[u] = position
            if save_sinks and dag.is_sink(v):
                blue.add(v)
                saves += 1
                save_volume += dag.mu(v)
            peak = max(peak, used)

        return CacheSimulationResult(
            load_volume=load_volume,
            save_volume=save_volume,
            num_loads=loads,
            num_saves=saves,
            num_evictions=evictions,
            peak_usage=peak,
            io_cost=self.g * (load_volume + save_volume),
            load_events=load_events,
        )


def simulate_cache(
    dag: ComputationalDag,
    compute_order: Sequence[NodeId],
    cache_size: float,
    policy: Optional[EvictionPolicy] = None,
    g: float = 1.0,
) -> CacheSimulationResult:
    """Convenience wrapper around :class:`CacheSimulator`."""
    return CacheSimulator(dag, cache_size, policy=policy, g=g).run(compute_order)
