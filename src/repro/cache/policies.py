"""Cache eviction policies for the memory-management stage.

The second stage of the two-stage approach decides which cached value to
evict whenever room must be made in a processor's fast memory.  The paper
uses two policies:

* the **clairvoyant** (Bélády / optimal offline) policy, which evicts the
  value whose next use on the same processor lies furthest in the future —
  optimal for unit memory weights;
* the **LRU** policy, which evicts the value that has been idle the longest
  (the "practical" baseline).

Two additional simple policies (FIFO and largest-first) are provided for
ablation experiments.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from repro.dag.graph import NodeId

_INFINITY = float("inf")


@dataclass(frozen=True)
class CacheEntryInfo:
    """Information about one cached value offered to an eviction policy.

    Attributes
    ----------
    node:
        The cached node (value).
    mu:
        Its memory weight.
    next_use:
        Index of the next compute operation on this processor that reads the
        value (``inf`` if it is never read again locally).
    last_use:
        Index of the most recent operation that produced or read the value.
    insertion:
        Index of the operation that brought the value into the cache.
    """

    node: NodeId
    mu: float
    next_use: float
    last_use: float
    insertion: float


class EvictionPolicy(abc.ABC):
    """Strategy choosing which cached value to evict when room is needed."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose_victim(self, candidates: Sequence[CacheEntryInfo]) -> NodeId:
        """Return the node to evict among ``candidates`` (never empty)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ClairvoyantPolicy(EvictionPolicy):
    """Bélády's optimal offline policy: evict the value needed furthest away.

    Ties are broken towards larger memory weights (freeing more space) and
    then deterministically by node id, so runs are reproducible.
    """

    name = "clairvoyant"

    def choose_victim(self, candidates: Sequence[CacheEntryInfo]) -> NodeId:
        if not candidates:
            raise ValueError("no eviction candidates")
        best = max(candidates, key=lambda e: (e.next_use, e.mu, str(e.node)))
        return best.node


class LruPolicy(EvictionPolicy):
    """Least-recently-used policy: evict the value idle for the longest time."""

    name = "lru"

    def choose_victim(self, candidates: Sequence[CacheEntryInfo]) -> NodeId:
        if not candidates:
            raise ValueError("no eviction candidates")
        best = min(candidates, key=lambda e: (e.last_use, str(e.node)))
        return best.node


class FifoPolicy(EvictionPolicy):
    """First-in-first-out policy: evict the value inserted earliest."""

    name = "fifo"

    def choose_victim(self, candidates: Sequence[CacheEntryInfo]) -> NodeId:
        if not candidates:
            raise ValueError("no eviction candidates")
        best = min(candidates, key=lambda e: (e.insertion, str(e.node)))
        return best.node


class LargestFirstPolicy(EvictionPolicy):
    """Evict the largest value first (frees the most space per eviction)."""

    name = "largest_first"

    def choose_victim(self, candidates: Sequence[CacheEntryInfo]) -> NodeId:
        if not candidates:
            raise ValueError("no eviction candidates")
        best = max(candidates, key=lambda e: (e.mu, e.next_use, str(e.node)))
        return best.node


class RandomPolicy(EvictionPolicy):
    """Uniformly random eviction (lower bound sanity check for ablations)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_victim(self, candidates: Sequence[CacheEntryInfo]) -> NodeId:
        if not candidates:
            raise ValueError("no eviction candidates")
        ordered = sorted(candidates, key=lambda e: str(e.node))
        return self._rng.choice(ordered).node


_POLICIES = {
    "clairvoyant": ClairvoyantPolicy,
    "belady": ClairvoyantPolicy,
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "largest_first": LargestFirstPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by name (case-insensitive)."""
    key = name.lower()
    if key not in _POLICIES:
        raise ValueError(
            f"unknown eviction policy {name!r}; available: {sorted(set(_POLICIES))}"
        )
    return _POLICIES[key]()
