"""Cache management: eviction policies and the two-stage BSP -> MBSP converter."""

from repro.cache.policies import (
    CacheEntryInfo,
    ClairvoyantPolicy,
    EvictionPolicy,
    FifoPolicy,
    LargestFirstPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)
from repro.cache.conversion import TwoStageConverter, two_stage_schedule
from repro.cache.simulator import CacheSimulationResult, CacheSimulator, simulate_cache

__all__ = [
    "CacheEntryInfo",
    "ClairvoyantPolicy",
    "EvictionPolicy",
    "FifoPolicy",
    "LargestFirstPolicy",
    "LruPolicy",
    "RandomPolicy",
    "make_policy",
    "TwoStageConverter",
    "two_stage_schedule",
    "CacheSimulationResult",
    "CacheSimulator",
    "simulate_cache",
]
