"""Computational DAG substrate: graph data structure, analysis, I/O, generators."""

from repro.dag.graph import ComputationalDag, NodeData
from repro.dag.analysis import (
    assign_random_memory_weights,
    critical_path_length,
    dag_statistics,
    minimum_cache_size,
    node_levels,
    work_lower_bound,
)

__all__ = [
    "ComputationalDag",
    "NodeData",
    "assign_random_memory_weights",
    "critical_path_length",
    "dag_statistics",
    "minimum_cache_size",
    "node_levels",
    "work_lower_bound",
]
