"""Structural analysis helpers for computational DAGs.

These functions compute quantities that the scheduling algorithms and the
experiment harness need repeatedly: the minimum fast-memory capacity ``r0``
required for a valid MBSP schedule, critical-path lengths, level structure,
and simple work/communication lower bounds.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Tuple

from repro.dag.graph import ComputationalDag, NodeId


def minimum_cache_size(dag: ComputationalDag) -> float:
    """The minimal fast-memory capacity ``r0`` allowing a valid schedule.

    A node ``v`` can only be computed when all its parents and its own output
    reside in the same processor's fast memory simultaneously, so every valid
    schedule needs at least ``mu(v) + sum(mu(parents))`` capacity for the most
    demanding node.  Source nodes are never computed but must be loadable,
    requiring at least ``mu(v)``.
    """
    best = 0.0
    for v in dag.nodes:
        if dag.is_source(v):
            best = max(best, dag.mu(v))
        else:
            need = dag.mu(v) + sum(dag.mu(u) for u in dag.parents(v))
            best = max(best, need)
    return best


def node_levels(dag: ComputationalDag) -> Dict[NodeId, int]:
    """Longest-path depth of each node (sources are level 0)."""
    level: Dict[NodeId, int] = {}
    for v in dag.topological_order():
        parents = dag.parents(v)
        level[v] = 0 if not parents else 1 + max(level[u] for u in parents)
    return level


def critical_path_length(dag: ComputationalDag) -> float:
    """Length of the longest weighted path (compute weights of non-sources).

    This is the minimum possible makespan of any parallel execution with an
    unbounded number of processors and free communication.
    """
    best: Dict[NodeId, float] = {}
    for v in dag.topological_order():
        own = 0.0 if dag.is_source(v) else dag.omega(v)
        parents = dag.parents(v)
        best[v] = own + (max(best[u] for u in parents) if parents else 0.0)
    return max(best.values()) if best else 0.0


def work_lower_bound(dag: ComputationalDag, num_processors: int) -> float:
    """Trivial makespan lower bound ``max(total_work / P, critical path)``."""
    if num_processors <= 0:
        raise ValueError("num_processors must be positive")
    return max(dag.total_work() / num_processors, critical_path_length(dag))


def io_lower_bound(dag: ComputationalDag, g: float) -> float:
    """Trivial I/O cost lower bound.

    Every source value must be loaded at least once by some processor and
    every sink value must be saved at least once, each at cost ``g * mu``.
    """
    loads = sum(dag.mu(v) for v in dag.sources())
    saves = sum(dag.mu(v) for v in dag.sinks())
    return g * (loads + saves)


def weighted_edge_cut(dag: ComputationalDag, parts: Dict[NodeId, int]) -> float:
    """Total ``mu`` weight of edges whose endpoints lie in different parts."""
    total = 0.0
    for u, v in dag.edges():
        if parts[u] != parts[v]:
            total += dag.mu(u)
    return total


def edge_cut(dag: ComputationalDag, parts: Dict[NodeId, int]) -> int:
    """Number of edges whose endpoints lie in different parts."""
    return sum(1 for u, v in dag.edges() if parts[u] != parts[v])


def longest_chain(dag: ComputationalDag) -> List[NodeId]:
    """A concrete longest path (by node count), useful for diagnostics."""
    best_len: Dict[NodeId, int] = {}
    best_pred: Dict[NodeId, NodeId] = {}
    for v in dag.topological_order():
        parents = dag.parents(v)
        if not parents:
            best_len[v] = 1
        else:
            u = max(parents, key=lambda p: best_len[p])
            best_len[v] = best_len[u] + 1
            best_pred[v] = u
    if not best_len:
        return []
    v = max(best_len, key=lambda n: best_len[n])
    chain = [v]
    while v in best_pred:
        v = best_pred[v]
        chain.append(v)
    chain.reverse()
    return chain


def assign_random_memory_weights(
    dag: ComputationalDag,
    low: int = 1,
    high: int = 5,
    seed: int = 0,
) -> ComputationalDag:
    """Assign uniform random integer memory weights in ``[low, high]``.

    The paper's benchmark DAGs only define compute weights, so memory weights
    are drawn uniformly and independently at random from {1, ..., 5} with a
    fixed seed (Appendix D.1).  The assignment is done in place and the DAG is
    also returned for chaining.
    """
    rng = random.Random(seed)
    for v in dag.nodes:
        dag.set_mu(v, float(rng.randint(low, high)))
    return dag


def dag_statistics(dag: ComputationalDag) -> Dict[str, float]:
    """Summary statistics used in reports and example scripts."""
    levels = node_levels(dag)
    return {
        "nodes": float(dag.num_nodes),
        "edges": float(dag.num_edges),
        "sources": float(len(dag.sources())),
        "sinks": float(len(dag.sinks())),
        "depth": float(max(levels.values()) + 1 if levels else 0),
        "total_work": dag.total_work(),
        "total_memory": dag.total_memory(),
        "critical_path": critical_path_length(dag),
        "r0": minimum_cache_size(dag),
    }


def transitive_reduction_size(dag: ComputationalDag) -> int:
    """Number of edges in the transitive reduction (density diagnostic)."""
    redundant = 0
    for u, v in dag.edges():
        # edge (u, v) is redundant if v is reachable from u via another child
        for w in dag.children(u):
            if w != v and v in dag.descendants(w) | {w}:
                pass
        # cheap check: v reachable from some other child of u
        others = [w for w in dag.children(u) if w != v]
        if any(v == w or v in dag.descendants(w) for w in others):
            redundant += 1
    return dag.num_edges - redundant
