"""Graph-computation workloads for the larger ("small") dataset.

Two workload families appear in the paper's larger dataset that are not part
of the fine-grained linear-algebra generators:

* ``simple_pagerank``: block-partitioned PageRank iterations,
* ``snni_graphchallenge``: sparse neural-network inference (the MIT/IEEE
  Graph Challenge SNNI workload) — a sequence of sparse layer multiplications
  followed by element-wise activations.

Both are generated at a block granularity so the node counts land in the few
hundred range used by the paper while keeping realistic dependency structure.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.dag.graph import ComputationalDag

_W_BLOCK_SPMV = 6
_W_COMBINE = 2
_W_DAMP = 1
_W_LAYER_MM = 5
_W_RELU = 1
_W_BIAS = 1


def simple_pagerank(
    num_blocks: int = 8,
    iterations: int = 6,
    connectivity: float = 0.4,
    seed: int = 0,
    name: Optional[str] = None,
) -> ComputationalDag:
    """Block-partitioned PageRank iterations.

    The web graph is split into ``num_blocks`` blocks.  One iteration has, per
    destination block, one partial-SpMV node for every source block that links
    into it (a random, seed-fixed block connectivity pattern), a combine node
    summing the partials, and a damping/update node producing the block's new
    rank vector.
    """
    rng = random.Random(seed)
    # fixed block-level connectivity (always include the diagonal block)
    links: List[List[int]] = []
    for dst in range(num_blocks):
        srcs = {dst}
        for src in range(num_blocks):
            if src != dst and rng.random() < connectivity:
                srcs.add(src)
        links.append(sorted(srcs))

    dag = ComputationalDag(name=name or "simple_pagerank")
    counter = [0]

    def fresh(omega: float, mu: float = 1.0) -> int:
        node = counter[0]
        counter[0] += 1
        dag.add_node(node, omega=omega, mu=mu)
        return node

    ranks = [fresh(1.0) for _ in range(num_blocks)]  # initial rank blocks
    for _ in range(iterations):
        new_ranks: List[int] = []
        for dst in range(num_blocks):
            partials = []
            for src in links[dst]:
                part = fresh(_W_BLOCK_SPMV)
                dag.add_edge(ranks[src], part)
                partials.append(part)
            combine = fresh(_W_COMBINE)
            for part in partials:
                dag.add_edge(part, combine)
            damp = fresh(_W_DAMP)
            dag.add_edge(combine, damp)
            new_ranks.append(damp)
        ranks = new_ranks
    return dag


def snni_graphchallenge(
    num_blocks: int = 6,
    num_layers: int = 8,
    connectivity: float = 0.35,
    seed: int = 0,
    name: Optional[str] = None,
) -> ComputationalDag:
    """Sparse neural-network inference (Graph Challenge SNNI) task graph.

    The activation matrix is split column-wise into ``num_blocks`` blocks; each
    of the ``num_layers`` sparse layers multiplies every activation block with
    the (random, seed-fixed) non-zero weight blocks feeding it, adds the bias
    and applies the ReLU.  The resulting DAG alternates wide multiplication
    levels with narrow element-wise levels, exactly the shape that makes the
    workload partitioning-friendly.
    """
    rng = random.Random(seed)
    dag = ComputationalDag(name=name or "snni_graphchall.")
    counter = [0]

    def fresh(omega: float, mu: float = 1.0) -> int:
        node = counter[0]
        counter[0] += 1
        dag.add_node(node, omega=omega, mu=mu)
        return node

    acts = [fresh(1.0) for _ in range(num_blocks)]  # input activation blocks
    for _layer in range(num_layers):
        new_acts: List[int] = []
        for dst in range(num_blocks):
            srcs = {dst}
            for src in range(num_blocks):
                if src != dst and rng.random() < connectivity:
                    srcs.add(src)
            partials = []
            for src in sorted(srcs):
                mm = fresh(_W_LAYER_MM)
                dag.add_edge(acts[src], mm)
                partials.append(mm)
            bias = fresh(_W_BIAS)
            for mm in partials:
                dag.add_edge(mm, bias)
            relu = fresh(_W_RELU)
            dag.add_edge(bias, relu)
            new_acts.append(relu)
        acts = new_acts
    return dag
