"""Fine-grained k-nearest-neighbour computational DAGs ("kNN" instances).

The benchmark's kNN instances model iterative label propagation over a fixed
k-nearest-neighbour graph: in every iteration, each data point gathers the
current values of its ``k`` neighbours, combines them (distance-weighted
reduction) and updates its own value.  The DAG therefore consists of ``K``
rounds; round ``t`` of point ``i`` depends on round ``t-1`` of ``i`` and of
its neighbours.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.dag.graph import ComputationalDag

_W_GATHER = 1
_W_COMBINE = 2
_W_UPDATE = 2


def knn_iteration(
    num_points: int,
    iterations: int,
    k: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
) -> ComputationalDag:
    """Iterated k-NN label-propagation DAG.

    Parameters
    ----------
    num_points:
        Number of data points ``N``.
    iterations:
        Number of propagation rounds ``K``.
    k:
        Number of neighbours gathered per point and round.
    """
    if num_points < 2 or iterations < 1:
        raise ValueError("need at least 2 points and 1 iteration")
    k = min(k, num_points - 1)
    rng = random.Random(seed)
    # fixed random neighbour lists (the k-NN graph itself)
    neighbours: List[List[int]] = []
    for i in range(num_points):
        others = [j for j in range(num_points) if j != i]
        rng.shuffle(others)
        neighbours.append(sorted(others[:k]))

    dag = ComputationalDag(name=name or f"kNN_N{num_points}_K{iterations}")
    counter = [0]

    def fresh(omega: float, mu: float = 1.0) -> int:
        node = counter[0]
        counter[0] += 1
        dag.add_node(node, omega=omega, mu=mu)
        return node

    current = [fresh(1.0) for _ in range(num_points)]  # initial labels (sources)
    for _ in range(iterations):
        nxt: List[int] = []
        for i in range(num_points):
            gathers = []
            for j in neighbours[i]:
                g = fresh(_W_GATHER)
                dag.add_edge(current[j], g)
                dag.add_edge(current[i], g)
                gathers.append(g)
            combine = fresh(_W_COMBINE)
            for g in gathers:
                dag.add_edge(g, combine)
            update = fresh(_W_UPDATE)
            dag.add_edge(combine, update)
            dag.add_edge(current[i], update)
            nxt.append(update)
        current = nxt
    return dag
