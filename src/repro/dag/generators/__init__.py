"""Computational DAG generators for the benchmark workload families."""

from repro.dag.generators.random_dags import (
    chain_dag,
    fork_join_dag,
    random_dag,
    random_layered_dag,
    random_tree,
)
from repro.dag.generators.linalg import conjugate_gradient, iterated_spmv, spmv
from repro.dag.generators.knn import knn_iteration
from repro.dag.generators.coarse import bicgstab, kmeans, pregel
from repro.dag.generators.graphs import simple_pagerank, snni_graphchallenge

__all__ = [
    "chain_dag",
    "fork_join_dag",
    "random_dag",
    "random_layered_dag",
    "random_tree",
    "conjugate_gradient",
    "iterated_spmv",
    "spmv",
    "knn_iteration",
    "bicgstab",
    "kmeans",
    "pregel",
    "simple_pagerank",
    "snni_graphchallenge",
]
