"""Fine-grained linear-algebra computational DAGs.

These generators reproduce the structure of the fine-grained instances in the
benchmark of Papp et al. [36] that the paper evaluates on:

* ``spmv``: a single sparse matrix-vector multiplication ``y = A x``,
* ``iterated_spmv`` ("exp" instances): ``y = A^K x`` computed as ``K`` chained
  SpMV operations,
* ``conjugate_gradient`` ("CG" instances): ``K`` iterations of the conjugate
  gradient method on a 2-D grid Laplacian, expressed at the granularity of
  individual multiply/add/axpy/dot operations.

The exact sparsity patterns of the original dataset are not available; the
generators build structurally analogous patterns (banded random sparsity for
SpMV, 5-point stencil for CG) from a seed, which preserves the fan-in/fan-out
and level structure that drives scheduling difficulty.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dag.graph import ComputationalDag

# Compute-weight convention used across the fine-grained generators: a value
# load / copy is weight 1, a multiply-add is weight 1-2, a division or square
# root (in CG scalar updates) is slightly heavier.
_W_MUL = 1
_W_ADD = 1
_W_AXPY = 2
_W_DOT = 2
_W_SCALAR = 3


def _random_sparsity(
    n: int,
    extra_per_row: int,
    bandwidth: int,
    rng: random.Random,
) -> List[List[int]]:
    """Random banded sparsity pattern: row ``i`` -> sorted column indices.

    Every row contains the diagonal plus up to ``extra_per_row`` additional
    columns within ``bandwidth`` of the diagonal.
    """
    pattern: List[List[int]] = []
    for i in range(n):
        cols = {i}
        lo, hi = max(0, i - bandwidth), min(n - 1, i + bandwidth)
        candidates = [j for j in range(lo, hi + 1) if j != i]
        rng.shuffle(candidates)
        cols.update(candidates[:extra_per_row])
        pattern.append(sorted(cols))
    return pattern


def _reduction_chain(
    dag: ComputationalDag,
    inputs: Sequence[int],
    label: str,
    counter: List[int],
    omega: float = _W_ADD,
    mu: float = 1.0,
) -> int:
    """Add a left-to-right chain of binary additions reducing ``inputs``.

    Returns the node id holding the final sum.  A single input is returned
    unchanged (no reduction node is created).
    """
    if not inputs:
        raise ValueError("cannot reduce an empty input list")
    acc = inputs[0]
    for value in inputs[1:]:
        node = counter[0]
        counter[0] += 1
        dag.add_node(node, omega=omega, mu=mu)
        dag.add_edge(acc, node)
        dag.add_edge(value, node)
        acc = node
    return acc


def spmv(
    n: int,
    extra_per_row: int = 2,
    bandwidth: int = 3,
    seed: int = 0,
    name: Optional[str] = None,
) -> ComputationalDag:
    """Fine-grained SpMV DAG ``y = A x`` for an ``n x n`` sparse matrix.

    Nodes: one source per vector entry ``x_j``, one multiply node per
    non-zero ``A_ij * x_j``, and a binary-addition reduction per row.  The
    final reduction node of row ``i`` is the output ``y_i`` (a sink).
    """
    rng = random.Random(seed)
    pattern = _random_sparsity(n, extra_per_row, bandwidth, rng)
    dag = ComputationalDag(name=name or f"spmv_N{n}")
    counter = [0]

    def fresh(omega: float, mu: float = 1.0) -> int:
        node = counter[0]
        counter[0] += 1
        dag.add_node(node, omega=omega, mu=mu)
        return node

    x_nodes = [fresh(1.0) for _ in range(n)]
    for i in range(n):
        products = []
        for j in pattern[i]:
            m = fresh(_W_MUL)
            dag.add_edge(x_nodes[j], m)
            products.append(m)
        _reduction_chain(dag, products, f"y{i}", counter)
    return dag


def iterated_spmv(
    n: int,
    iterations: int,
    extra_per_row: int = 2,
    bandwidth: int = 3,
    seed: int = 0,
    name: Optional[str] = None,
) -> ComputationalDag:
    """Iterated SpMV DAG ``y = A^K x`` (the "exp" instances of the benchmark).

    The same sparsity pattern is reused in every iteration; the outputs of
    iteration ``k`` are the vector inputs of iteration ``k+1``.
    """
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    rng = random.Random(seed)
    pattern = _random_sparsity(n, extra_per_row, bandwidth, rng)
    dag = ComputationalDag(name=name or f"exp_N{n}_K{iterations}")
    counter = [0]

    def fresh(omega: float, mu: float = 1.0) -> int:
        node = counter[0]
        counter[0] += 1
        dag.add_node(node, omega=omega, mu=mu)
        return node

    current = [fresh(1.0) for _ in range(n)]
    for _ in range(iterations):
        nxt: List[int] = []
        for i in range(n):
            products = []
            for j in pattern[i]:
                m = fresh(_W_MUL)
                dag.add_edge(current[j], m)
                products.append(m)
            nxt.append(_reduction_chain(dag, products, f"y{i}", counter))
        current = nxt
    return dag


def conjugate_gradient(
    grid: int,
    iterations: int,
    seed: int = 0,
    name: Optional[str] = None,
) -> ComputationalDag:
    """Fine-grained conjugate gradient DAG (the "CG" instances).

    The linear system is the 5-point stencil Laplacian on a ``grid x grid``
    mesh (``n = grid**2`` unknowns).  Each CG iteration consists of:

    1. ``q = A p``          (one multiply per stencil entry + row reductions)
    2. ``pq = p . q``        (dot product: per-entry multiplies + reduction)
    3. ``alpha = rr / pq``   (scalar node)
    4. ``x += alpha p``      (axpy, per entry)
    5. ``r -= alpha q``      (axpy, per entry)
    6. ``rr' = r . r``       (dot product)
    7. ``beta = rr' / rr``   (scalar node)
    8. ``p = r + beta p``    (axpy, per entry)

    Sinks are the final ``x`` entries.  The structure (alternating global
    reductions and embarrassingly parallel vector updates) is what makes CG a
    hard instance for memory-constrained scheduling.
    """
    if grid < 1 or iterations < 1:
        raise ValueError("grid and iterations must be at least 1")
    rng = random.Random(seed)
    n = grid * grid
    dag = ComputationalDag(name=name or f"CG_N{grid}_K{iterations}")
    counter = [0]

    def fresh(omega: float, mu: float = 1.0) -> int:
        node = counter[0]
        counter[0] += 1
        dag.add_node(node, omega=omega, mu=mu)
        return node

    def stencil_neighbors(idx: int) -> List[int]:
        row, col = divmod(idx, grid)
        out = [idx]
        if row > 0:
            out.append(idx - grid)
        if row < grid - 1:
            out.append(idx + grid)
        if col > 0:
            out.append(idx - 1)
        if col < grid - 1:
            out.append(idx + 1)
        return out

    # Initial vectors: x0 (implicitly zero, not represented), r0 = b, p0 = r0.
    r = [fresh(1.0) for _ in range(n)]  # sources: right-hand side b
    p = list(r)
    x: List[Optional[int]] = [None] * n

    # rr = r . r
    def dot(a: Sequence[int], b: Sequence[int]) -> int:
        prods = []
        for ai, bi in zip(a, b):
            m = fresh(_W_DOT)
            dag.add_edge(ai, m)
            if bi != ai:
                dag.add_edge(bi, m)
            prods.append(m)
        return _reduction_chain(dag, prods, "dot", counter)

    rr = dot(r, r)

    for _ in range(iterations):
        # q = A p (5-point stencil SpMV)
        q: List[int] = []
        for i in range(n):
            prods = []
            for j in stencil_neighbors(i):
                m = fresh(_W_MUL)
                dag.add_edge(p[j], m)
                prods.append(m)
            q.append(_reduction_chain(dag, prods, f"q{i}", counter))
        # pq = p . q ; alpha = rr / pq
        pq = dot(p, q)
        alpha = fresh(_W_SCALAR)
        dag.add_edge(pq, alpha)
        dag.add_edge(rr, alpha)
        # x += alpha p ; r -= alpha q
        new_x: List[int] = []
        new_r: List[int] = []
        for i in range(n):
            xi = fresh(_W_AXPY)
            dag.add_edge(alpha, xi)
            dag.add_edge(p[i], xi)
            if x[i] is not None:
                dag.add_edge(x[i], xi)
            new_x.append(xi)
            ri = fresh(_W_AXPY)
            dag.add_edge(alpha, ri)
            dag.add_edge(q[i], ri)
            dag.add_edge(r[i], ri)
            new_r.append(ri)
        x = list(new_x)
        # rr' = r . r ; beta = rr' / rr
        rr_new = dot(new_r, new_r)
        beta = fresh(_W_SCALAR)
        dag.add_edge(rr_new, beta)
        dag.add_edge(rr, beta)
        # p = r + beta p
        new_p: List[int] = []
        for i in range(n):
            pi = fresh(_W_AXPY)
            dag.add_edge(beta, pi)
            dag.add_edge(new_r[i], pi)
            dag.add_edge(p[i], pi)
            new_p.append(pi)
        r, p, rr = new_r, new_p, rr_new
    return dag
