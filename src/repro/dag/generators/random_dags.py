"""Random DAG generators.

Used for testing, property-based testing (hypothesis strategies build on
these), and for stress-testing the schedulers on unstructured workloads.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.dag.graph import ComputationalDag


def random_layered_dag(
    num_layers: int,
    width: int,
    edge_probability: float = 0.4,
    seed: int = 0,
    min_omega: int = 1,
    max_omega: int = 5,
    min_mu: int = 1,
    max_mu: int = 5,
    name: Optional[str] = None,
) -> ComputationalDag:
    """A layered random DAG.

    Nodes are arranged in ``num_layers`` layers of ``width`` nodes each; every
    node in layer ``i > 0`` receives an edge from each node of layer ``i-1``
    independently with probability ``edge_probability`` (at least one edge is
    forced so that only layer-0 nodes are sources).
    """
    if num_layers < 1 or width < 1:
        raise ValueError("num_layers and width must be at least 1")
    rng = random.Random(seed)
    dag = ComputationalDag(name=name or f"layered_L{num_layers}_W{width}_s{seed}")
    layers = []
    idx = 0
    for layer in range(num_layers):
        current = []
        for _ in range(width):
            dag.add_node(
                idx,
                omega=rng.randint(min_omega, max_omega),
                mu=rng.randint(min_mu, max_mu),
            )
            current.append(idx)
            idx += 1
        layers.append(current)
    for layer in range(1, num_layers):
        for v in layers[layer]:
            parents = [u for u in layers[layer - 1] if rng.random() < edge_probability]
            if not parents:
                parents = [rng.choice(layers[layer - 1])]
            for u in parents:
                dag.add_edge(u, v)
    return dag


def random_dag(
    num_nodes: int,
    edge_probability: float = 0.15,
    seed: int = 0,
    min_omega: int = 1,
    max_omega: int = 5,
    min_mu: int = 1,
    max_mu: int = 5,
    name: Optional[str] = None,
) -> ComputationalDag:
    """An Erdős–Rényi-style random DAG over a random topological order.

    Each forward pair ``(i, j)`` with ``i < j`` is connected independently
    with probability ``edge_probability``.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    rng = random.Random(seed)
    dag = ComputationalDag(name=name or f"random_n{num_nodes}_s{seed}")
    for i in range(num_nodes):
        dag.add_node(
            i,
            omega=rng.randint(min_omega, max_omega),
            mu=rng.randint(min_mu, max_mu),
        )
    for j in range(1, num_nodes):
        for i in range(j):
            if rng.random() < edge_probability:
                dag.add_edge(i, j)
    return dag


def random_tree(
    num_nodes: int,
    max_children: int = 3,
    seed: int = 0,
    name: Optional[str] = None,
) -> ComputationalDag:
    """A random in-tree (every node except the root has exactly one child).

    In-trees model reduction computations; they are a classic easy case for
    scheduling and a useful sanity check for pebbling strategies.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    rng = random.Random(seed)
    dag = ComputationalDag(name=name or f"tree_n{num_nodes}_s{seed}")
    for i in range(num_nodes):
        dag.add_node(i, omega=rng.randint(1, 3), mu=rng.randint(1, 3))
    # node 'num_nodes-1' is the root (sink); every other node points to a
    # node with a larger index so the result is a DAG that is an in-tree.
    child_count = {i: 0 for i in range(num_nodes)}
    for i in range(num_nodes - 1):
        candidates = [j for j in range(i + 1, num_nodes) if child_count[j] < max_children]
        target = rng.choice(candidates) if candidates else num_nodes - 1
        dag.add_edge(i, target)
        child_count[target] += 1
    return dag


def chain_dag(
    length: int,
    omega: float = 1.0,
    mu: float = 1.0,
    name: Optional[str] = None,
) -> ComputationalDag:
    """A simple chain ``0 -> 1 -> ... -> length-1`` with uniform weights."""
    if length < 1:
        raise ValueError("length must be at least 1")
    dag = ComputationalDag(name=name or f"chain_{length}")
    for i in range(length):
        dag.add_node(i, omega=omega, mu=mu)
    for i in range(length - 1):
        dag.add_edge(i, i + 1)
    return dag


def fork_join_dag(
    width: int,
    stages: int = 1,
    omega: float = 1.0,
    mu: float = 1.0,
    name: Optional[str] = None,
) -> ComputationalDag:
    """Fork-join DAG: a source fans out to ``width`` nodes which join, repeated."""
    if width < 1 or stages < 1:
        raise ValueError("width and stages must be at least 1")
    dag = ComputationalDag(name=name or f"forkjoin_w{width}_s{stages}")
    idx = 0

    def new_node() -> int:
        nonlocal idx
        dag.add_node(idx, omega=omega, mu=mu)
        idx += 1
        return idx - 1

    prev_join = new_node()
    for _ in range(stages):
        branches = [new_node() for _ in range(width)]
        join = new_node()
        for b in branches:
            dag.add_edge(prev_join, b)
            dag.add_edge(b, join)
        prev_join = join
    return dag
