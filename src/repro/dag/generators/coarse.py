"""Coarse-grained algorithm task graphs (BiCGSTAB, k-means, Pregel).

The benchmark's coarse-grained instances represent whole operators (an SpMV,
a dot product, a centroid update, a Pregel superstep over a graph partition)
as single DAG nodes with heterogeneous compute weights.  These generators
reproduce the published algorithm structure at that granularity and unroll a
configurable number of iterations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dag.graph import ComputationalDag

# Coarse-grained compute-weight convention: matrix-vector products and other
# O(nnz) operators are heavy, vector updates medium, scalar reductions light.
_W_SPMV = 8
_W_DOT = 3
_W_AXPY = 4
_W_SCALAR = 1
_W_DIST = 6
_W_ASSIGN = 4
_W_CENTROID = 5
_W_VERTEX = 6
_W_MSG = 3
_W_AGG = 2


class _Builder:
    """Tiny helper to build coarse task graphs with readable code."""

    def __init__(self, name: str) -> None:
        self.dag = ComputationalDag(name=name)
        self._next = 0

    def node(self, omega: float, mu: float = 1.0, parents: Optional[List[int]] = None) -> int:
        idx = self._next
        self._next += 1
        self.dag.add_node(idx, omega=omega, mu=mu)
        for p in parents or []:
            self.dag.add_edge(p, idx)
        return idx


def bicgstab(iterations: int = 3, name: Optional[str] = None) -> ComputationalDag:
    """Coarse-grained BiCGSTAB task graph with ``iterations`` unrolled steps.

    Each iteration follows the textbook BiCGSTAB data flow: two SpMV
    applications (``v = A p`` and ``t = A s``), four dot products, the scalar
    updates (rho, alpha, omega, beta), and the vector updates for ``s``,
    ``x`` and ``r``.
    """
    b = _Builder(name or "bicgstab")
    # initial data: b (rhs), x0 -> r0 = b - A x0, rhat = r0, p0 = r0
    rhs = b.node(_W_SCALAR)
    x = b.node(_W_SCALAR)
    spmv0 = b.node(_W_SPMV, parents=[x])
    r = b.node(_W_AXPY, parents=[rhs, spmv0])
    rhat = b.node(_W_SCALAR, parents=[r])
    p = b.node(_W_SCALAR, parents=[r])
    rho = b.node(_W_DOT, parents=[rhat, r])
    for _ in range(iterations):
        v = b.node(_W_SPMV, parents=[p])
        rhat_v = b.node(_W_DOT, parents=[rhat, v])
        alpha = b.node(_W_SCALAR, parents=[rho, rhat_v])
        s = b.node(_W_AXPY, parents=[r, alpha, v])
        t = b.node(_W_SPMV, parents=[s])
        t_s = b.node(_W_DOT, parents=[t, s])
        t_t = b.node(_W_DOT, parents=[t])
        omega_s = b.node(_W_SCALAR, parents=[t_s, t_t])
        x = b.node(_W_AXPY, parents=[x, alpha, p, omega_s, s])
        r = b.node(_W_AXPY, parents=[s, omega_s, t])
        rho_new = b.node(_W_DOT, parents=[rhat, r])
        beta = b.node(_W_SCALAR, parents=[rho_new, rho, alpha, omega_s])
        p = b.node(_W_AXPY, parents=[r, beta, p, omega_s, v])
        rho = rho_new
    return b.dag


def kmeans(
    num_blocks: int = 3,
    num_clusters: int = 2,
    iterations: int = 3,
    name: Optional[str] = None,
) -> ComputationalDag:
    """Coarse-grained Lloyd's k-means task graph.

    The data set is split into ``num_blocks`` blocks.  Per iteration and block
    there is a distance-computation node and an assignment node; per cluster a
    centroid-update node that reads every block's assignments.
    """
    b = _Builder(name or "k-means")
    blocks = [b.node(_W_SCALAR) for _ in range(num_blocks)]
    centroids = [b.node(_W_SCALAR) for _ in range(num_clusters)]
    for _ in range(iterations):
        assigns: List[int] = []
        for blk in blocks:
            dist = b.node(_W_DIST, parents=[blk] + centroids)
            assign = b.node(_W_ASSIGN, parents=[dist, blk])
            assigns.append(assign)
        new_centroids: List[int] = []
        for _c in range(num_clusters):
            upd = b.node(_W_CENTROID, parents=assigns)
            new_centroids.append(upd)
        centroids = new_centroids
    return b.dag


def pregel(
    num_partitions: int = 4,
    supersteps: int = 4,
    name: Optional[str] = None,
) -> ComputationalDag:
    """Coarse-grained Pregel (vertex-centric BSP graph processing) task graph.

    Each Pregel superstep has one vertex-compute node per graph partition, a
    message-exchange node per partition (reading all compute nodes), and a
    global aggregation node.
    """
    b = _Builder(name or "pregel")
    parts = [b.node(_W_SCALAR) for _ in range(num_partitions)]
    state = list(parts)
    agg: Optional[int] = None
    for _ in range(supersteps):
        computes: List[int] = []
        for st in state:
            parents = [st] if agg is None else [st, agg]
            computes.append(b.node(_W_VERTEX, parents=parents))
        msgs: List[int] = []
        for i in range(num_partitions):
            msgs.append(b.node(_W_MSG, parents=computes))
        agg = b.node(_W_AGG, parents=computes)
        state = msgs
    return b.dag
