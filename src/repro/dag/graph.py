"""Weighted computational DAGs.

The central data structure of the library: a directed acyclic graph whose
nodes carry a *compute weight* ``omega`` (the time it takes to execute the
operation) and a *memory weight* ``mu`` (the amount of fast memory its output
occupies).  Edges are data dependencies: the output of the tail node is an
input of the head node.

The class is intentionally self-contained (plain dict adjacency) so the rest
of the library does not depend on :mod:`networkx`; conversion helpers to and
from ``networkx.DiGraph`` are provided for interoperability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import CycleError, GraphError

NodeId = Hashable


@dataclass(frozen=True)
class NodeData:
    """Weights attached to a single DAG node.

    Attributes
    ----------
    omega:
        Compute weight (execution time of the operation).  Non-negative.
    mu:
        Memory weight (size of the node's output value).  Non-negative.
    """

    omega: float = 1.0
    mu: float = 1.0

    def __post_init__(self) -> None:
        if self.omega < 0:
            raise GraphError(f"compute weight must be non-negative, got {self.omega}")
        if self.mu < 0:
            raise GraphError(f"memory weight must be non-negative, got {self.mu}")


class ComputationalDag:
    """A computational DAG with per-node compute and memory weights.

    Nodes may be any hashable identifiers.  The graph is mutable while being
    built; analysis helpers (topological order, ancestor queries, ...) are
    recomputed lazily and cached until the next mutation.

    Parameters
    ----------
    name:
        Optional human-readable instance name (used in reports and tables).
    """

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self._succ: Dict[NodeId, List[NodeId]] = {}
        self._pred: Dict[NodeId, List[NodeId]] = {}
        self._data: Dict[NodeId, NodeData] = {}
        self._topo_cache: Optional[List[NodeId]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, omega: float = 1.0, mu: float = 1.0) -> NodeId:
        """Add ``node`` with the given weights.  Re-adding updates the weights."""
        if node not in self._data:
            self._succ[node] = []
            self._pred[node] = []
        self._data[node] = NodeData(omega=float(omega), mu=float(mu))
        self._topo_cache = None
        return node

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add the dependency edge ``u -> v`` (output of *u* is an input of *v*)."""
        if u not in self._data:
            raise GraphError(f"unknown tail node {u!r}")
        if v not in self._data:
            raise GraphError(f"unknown head node {v!r}")
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        if v in self._succ[u]:
            return
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._topo_cache = None

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge ``u -> v`` if present."""
        if u in self._succ and v in self._succ[u]:
            self._succ[u].remove(v)
            self._pred[v].remove(u)
            self._topo_cache = None

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        """All node identifiers, in insertion order."""
        return list(self._data.keys())

    @property
    def num_nodes(self) -> int:
        return len(self._data)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Iterate over all edges as ``(tail, head)`` pairs."""
        for u, succ in self._succ.items():
            for v in succ:
                yield (u, v)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._data)

    def parents(self, node: NodeId) -> List[NodeId]:
        """Direct predecessors of ``node`` (its input values)."""
        self._check_node(node)
        return list(self._pred[node])

    def children(self, node: NodeId) -> List[NodeId]:
        """Direct successors of ``node`` (consumers of its output)."""
        self._check_node(node)
        return list(self._succ[node])

    def in_degree(self, node: NodeId) -> int:
        self._check_node(node)
        return len(self._pred[node])

    def out_degree(self, node: NodeId) -> int:
        self._check_node(node)
        return len(self._succ[node])

    def omega(self, node: NodeId) -> float:
        """Compute weight of ``node``."""
        self._check_node(node)
        return self._data[node].omega

    def mu(self, node: NodeId) -> float:
        """Memory weight of ``node``."""
        self._check_node(node)
        return self._data[node].mu

    def node_data(self, node: NodeId) -> NodeData:
        self._check_node(node)
        return self._data[node]

    def set_omega(self, node: NodeId, omega: float) -> None:
        self._check_node(node)
        self._data[node] = NodeData(omega=float(omega), mu=self._data[node].mu)

    def set_mu(self, node: NodeId, mu: float) -> None:
        self._check_node(node)
        self._data[node] = NodeData(omega=self._data[node].omega, mu=float(mu))

    def _check_node(self, node: NodeId) -> None:
        if node not in self._data:
            raise GraphError(f"unknown node {node!r}")

    # ------------------------------------------------------------------
    # structural properties
    # ------------------------------------------------------------------
    def sources(self) -> List[NodeId]:
        """Nodes without parents (the inputs of the computation)."""
        return [v for v in self._data if not self._pred[v]]

    def sinks(self) -> List[NodeId]:
        """Nodes without children (the outputs of the computation)."""
        return [v for v in self._data if not self._succ[v]]

    def is_source(self, node: NodeId) -> bool:
        self._check_node(node)
        return not self._pred[node]

    def is_sink(self, node: NodeId) -> bool:
        self._check_node(node)
        return not self._succ[node]

    def topological_order(self) -> List[NodeId]:
        """A topological order of the nodes (Kahn's algorithm, stable).

        Raises :class:`~repro.exceptions.CycleError` if the graph has a cycle.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indeg = {v: len(self._pred[v]) for v in self._data}
        ready = [v for v in self._data if indeg[v] == 0]
        order: List[NodeId] = []
        head = 0
        while head < len(ready):
            v = ready[head]
            head += 1
            order.append(v)
            for w in self._succ[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.append(w)
        if len(order) != len(self._data):
            raise CycleError(f"graph {self.name!r} contains a cycle")
        self._topo_cache = order
        return list(order)

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except CycleError:
            return False

    def total_work(self) -> float:
        """Sum of compute weights over all non-source nodes.

        Source nodes are never computed in the MBSP model (they are loaded
        from slow memory), so they do not contribute to the work.
        """
        return sum(self._data[v].omega for v in self._data if self._pred[v])

    def total_memory(self) -> float:
        """Sum of memory weights over all nodes."""
        return sum(d.mu for d in self._data.values())

    def ancestors(self, node: NodeId) -> Set[NodeId]:
        """All transitive predecessors of ``node`` (excluding itself)."""
        self._check_node(node)
        seen: Set[NodeId] = set()
        stack = list(self._pred[node])
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self._pred[u])
        return seen

    def descendants(self, node: NodeId) -> Set[NodeId]:
        """All transitive successors of ``node`` (excluding itself)."""
        self._check_node(node)
        seen: Set[NodeId] = set()
        stack = list(self._succ[node])
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self._succ[u])
        return seen

    def induced_subgraph(self, nodes: Iterable[NodeId], name: Optional[str] = None) -> "ComputationalDag":
        """The subgraph induced by ``nodes`` (weights and internal edges kept)."""
        keep = set(nodes)
        for v in keep:
            self._check_node(v)
        sub = ComputationalDag(name=name or f"{self.name}[sub]")
        for v in self._data:
            if v in keep:
                sub.add_node(v, omega=self._data[v].omega, mu=self._data[v].mu)
        for u, v in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v)
        return sub

    def copy(self, name: Optional[str] = None) -> "ComputationalDag":
        return self.induced_subgraph(self._data.keys(), name=name or self.name)

    def relabeled(self, mapping: Mapping[NodeId, NodeId], name: Optional[str] = None) -> "ComputationalDag":
        """Return a copy with node ids replaced according to ``mapping``."""
        out = ComputationalDag(name=name or self.name)
        for v in self._data:
            out.add_node(mapping.get(v, v), omega=self._data[v].omega, mu=self._data[v].mu)
        for u, v in self.edges():
            out.add_edge(mapping.get(u, u), mapping.get(v, v))
        return out

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` with ``omega``/``mu`` node attributes."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for v, d in self._data.items():
            g.add_node(v, omega=d.omega, mu=d.mu)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g, name: Optional[str] = None) -> "ComputationalDag":
        """Build from a :class:`networkx.DiGraph` (missing weights default to 1)."""
        dag = cls(name=name or (g.name or "dag"))
        for v, d in g.nodes(data=True):
            dag.add_node(v, omega=d.get("omega", 1.0), mu=d.get("mu", 1.0))
        for u, v in g.edges():
            dag.add_edge(u, v)
        if not dag.is_acyclic():
            raise CycleError("input networkx graph contains a cycle")
        return dag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ComputationalDag(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
