"""Serialization of computational DAGs.

Two formats are supported:

* a JSON document (``.json``) that stores node ids, weights and edges, and
* a simple whitespace-separated text format (``.dag``) inspired by the
  HyperDAG / Matrix-Market style files used by DAG-scheduling frameworks::

      % comment lines start with '%'
      <num_nodes> <num_edges>
      <node_id> <omega> <mu>          (one line per node)
      <tail_id> <head_id>             (one line per edge)

Node ids in the text format must be integers ``0 .. num_nodes-1``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.dag.graph import ComputationalDag

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def dag_to_dict(dag: ComputationalDag) -> dict:
    """Plain-dict representation (JSON-serializable if node ids are)."""
    return {
        "name": dag.name,
        "nodes": [
            {"id": v, "omega": dag.omega(v), "mu": dag.mu(v)} for v in dag.nodes
        ],
        "edges": [[u, v] for u, v in dag.edges()],
    }


def dag_from_dict(data: dict) -> ComputationalDag:
    """Inverse of :func:`dag_to_dict`."""
    dag = ComputationalDag(name=data.get("name", "dag"))
    for nd in data["nodes"]:
        dag.add_node(nd["id"], omega=nd.get("omega", 1.0), mu=nd.get("mu", 1.0))
    for u, v in data.get("edges", []):
        dag.add_edge(u, v)
    return dag


def save_json(dag: ComputationalDag, path: PathLike) -> None:
    """Write ``dag`` to ``path`` as a JSON document."""
    Path(path).write_text(json.dumps(dag_to_dict(dag), indent=2, sort_keys=True))


def load_json(path: PathLike) -> ComputationalDag:
    """Read a DAG previously written by :func:`save_json`."""
    return dag_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# text format
# ----------------------------------------------------------------------
def save_text(dag: ComputationalDag, path: PathLike) -> None:
    """Write ``dag`` in the simple text format (integer node ids required)."""
    nodes = dag.nodes
    index = {v: i for i, v in enumerate(nodes)}
    lines = [f"% dag {dag.name}", f"{dag.num_nodes} {dag.num_edges}"]
    for v in nodes:
        lines.append(f"{index[v]} {dag.omega(v):g} {dag.mu(v):g}")
    for u, v in dag.edges():
        lines.append(f"{index[u]} {index[v]}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_text(path: PathLike, name: str | None = None) -> ComputationalDag:
    """Read a DAG from the simple text format."""
    raw = [
        line.strip()
        for line in Path(path).read_text().splitlines()
        if line.strip() and not line.strip().startswith("%")
    ]
    if not raw:
        raise GraphError(f"empty DAG file {path}")
    header = raw[0].split()
    if len(header) != 2:
        raise GraphError(f"malformed header line {raw[0]!r} in {path}")
    num_nodes, num_edges = int(header[0]), int(header[1])
    expected = 1 + num_nodes + num_edges
    if len(raw) != expected:
        raise GraphError(
            f"expected {expected} content lines in {path}, found {len(raw)}"
        )
    dag = ComputationalDag(name=name or Path(path).stem)
    for line in raw[1 : 1 + num_nodes]:
        parts = line.split()
        if len(parts) != 3:
            raise GraphError(f"malformed node line {line!r}")
        dag.add_node(int(parts[0]), omega=float(parts[1]), mu=float(parts[2]))
    for line in raw[1 + num_nodes :]:
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(f"malformed edge line {line!r}")
        dag.add_edge(int(parts[0]), int(parts[1]))
    return dag


def save(dag: ComputationalDag, path: PathLike) -> None:
    """Dispatch on file suffix: ``.json`` or anything else (text format)."""
    if str(path).endswith(".json"):
        save_json(dag, path)
    else:
        save_text(dag, path)


def load(path: PathLike) -> ComputationalDag:
    """Dispatch on file suffix: ``.json`` or anything else (text format)."""
    if str(path).endswith(".json"):
        return load_json(path)
    return load_text(path)
