"""repro — MBSP scheduling: multiprocessor DAG scheduling with memory constraints.

A from-scratch Python reproduction of

    Papp, Böhnlein, Yzelman:
    "Multiprocessor Scheduling with Memory Constraints:
     Fundamental Properties and Finding Optimal Solutions", ICPP 2025.

The package provides the MBSP model (red-blue pebbling with supersteps),
two-stage baselines (BSP schedulers + cache-eviction policies), the holistic
ILP-based scheduler, the divide-and-conquer ILP for larger DAGs, the paper's
theoretical gadget constructions, and an experiment harness regenerating
every table and figure of the paper's evaluation.

Quick start
-----------
>>> from repro.dag.generators import spmv
>>> from repro.dag.analysis import assign_random_memory_weights
>>> from repro.model import make_instance, synchronous_cost
>>> from repro.core import schedule_mbsp
>>> dag = assign_random_memory_weights(spmv(4), seed=1)
>>> instance = make_instance(dag, num_processors=2, cache_factor=3.0, g=1, L=10)
>>> schedule = schedule_mbsp(instance, method="baseline")
>>> synchronous_cost(schedule) > 0
True
"""

__version__ = "1.0.0"

from repro.dag.graph import ComputationalDag
from repro.model.architecture import MbspArchitecture
from repro.model.instance import MbspInstance, make_instance
from repro.model.schedule import MbspSchedule
from repro.model.cost import asynchronous_cost, synchronous_cost
from repro.model.validation import validate_schedule
from repro.core.scheduler import MbspIlpScheduler, schedule_mbsp
from repro.core.two_stage import baseline_schedule

__all__ = [
    "__version__",
    "ComputationalDag",
    "MbspArchitecture",
    "MbspInstance",
    "make_instance",
    "MbspSchedule",
    "asynchronous_cost",
    "synchronous_cost",
    "validate_schedule",
    "MbspIlpScheduler",
    "schedule_mbsp",
    "baseline_schedule",
]
