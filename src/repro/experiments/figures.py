"""Regeneration of the paper's figures.

* **Figure 4** — the distribution of per-instance cost-reduction ratios for
  the base case and the alternative parameter settings (r=5*r0, P=8, L=0,
  asynchronous).  The figure in the paper is a strip/box plot; this module
  produces the underlying per-instance ratio series plus summary statistics,
  and can render a simple ASCII box summary (no plotting dependencies).
* **Figures 1 and 2** — the Theorem 4.1 construction and its two schedules;
  :func:`theorem41_comparison` reports the two-stage vs. optimal cost ratio
  as a function of the construction size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cache.conversion import two_stage_schedule
from repro.cache.policies import ClairvoyantPolicy
from repro.model.cost import synchronous_cost
from repro.model.validation import validate_schedule
from repro.theory.constructions import (
    chain_per_processor_bsp_schedule,
    optimal_gap_schedule,
    two_stage_gap_construction,
)
from repro.experiments.runner import ExperimentConfig, InstanceResult, geometric_mean
from repro.experiments.tables import table4


@dataclass
class RatioSeries:
    """Per-instance cost-reduction ratios of one configuration."""

    name: str
    ratios: List[float]

    @property
    def geomean(self) -> float:
        return geometric_mean(self.ratios)

    @property
    def minimum(self) -> float:
        return min(self.ratios) if self.ratios else 1.0

    @property
    def maximum(self) -> float:
        return max(self.ratios) if self.ratios else 1.0

    def quantile(self, q: float) -> float:
        if not self.ratios:
            return 1.0
        ordered = sorted(self.ratios)
        idx = min(int(q * (len(ordered) - 1) + 0.5), len(ordered) - 1)
        return ordered[idx]


def figure4(
    base_config: Optional[ExperimentConfig] = None,
    limit: Optional[int] = None,
    configurations: Sequence[str] = ("base", "r5", "p8", "L0", "async"),
    verbose: bool = False,
    engine=None,
) -> Dict[str, RatioSeries]:
    """Cost-reduction ratio distributions for the Figure 4 configurations.

    The underlying Table 4 sweep runs through the parallel experiment
    engine; pass a pre-built ``engine`` to parallelise or cache it.
    """
    results = table4(
        base_config=base_config,
        limit=limit,
        configurations=configurations,
        verbose=verbose,
        engine=engine,
    )
    series = {
        name: RatioSeries(name=name, ratios=[r.ratio for r in rows])
        for name, rows in results.items()
    }
    if verbose:  # pragma: no cover
        print(render_figure4(series))
    return series


def render_figure4(series: Dict[str, RatioSeries]) -> str:
    """ASCII rendering of the Figure 4 ratio distributions."""
    lines = ["Figure 4: cost reduction ratios (ILP / baseline)", ""]
    lines.append(f"{'config':<8s} {'min':>6s} {'q25':>6s} {'median':>7s} {'q75':>6s} {'max':>6s} {'geomean':>8s}")
    for name, s in series.items():
        lines.append(
            f"{name:<8s} {s.minimum:>6.2f} {s.quantile(0.25):>6.2f} "
            f"{s.quantile(0.5):>7.2f} {s.quantile(0.75):>6.2f} {s.maximum:>6.2f} "
            f"{s.geomean:>8.3f}"
        )
    return "\n".join(lines)


@dataclass
class Theorem41Point:
    """One data point of the Figure 1/2 comparison."""

    d: int
    m: int
    two_stage_cost: float
    optimal_cost: float

    @property
    def ratio(self) -> float:
        return self.two_stage_cost / self.optimal_cost


def theorem41_comparison(
    sizes: Sequence[int] = (2, 4, 6, 8, 10),
    chain_factor: int = 2,
    g: float = 1.0,
) -> List[Theorem41Point]:
    """Two-stage vs. optimal cost on the Theorem 4.1 gadget for growing ``d``.

    The ratio grows (asymptotically linearly in ``d``), which is the
    executable version of Theorem 4.1 / Figures 1 and 2.
    """
    points: List[Theorem41Point] = []
    for d in sizes:
        m = chain_factor * d
        construction = two_stage_gap_construction(d=d, m=m)
        instance = construction.instance(g=g, L=0.0)
        bsp = chain_per_processor_bsp_schedule(construction)
        two_stage = two_stage_schedule(bsp, instance, ClairvoyantPolicy())
        validate_schedule(two_stage)
        optimal = optimal_gap_schedule(construction, g=g, L=0.0)
        validate_schedule(optimal)
        points.append(
            Theorem41Point(
                d=d,
                m=m,
                two_stage_cost=synchronous_cost(two_stage),
                optimal_cost=synchronous_cost(optimal),
            )
        )
    return points
