"""Formatting and persistence of experiment results.

Besides the fixed-width tables and CSV export, this module reads and writes
the streaming JSONL result files produced by the parallel experiment engine
(:mod:`repro.experiments.parallel`): one JSON object per line with the job
key, kind, instance name and the serialized result.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.experiments.runner import InstanceResult, geometric_mean

PathLike = Union[str, Path]


def format_results_table(
    results: Sequence[InstanceResult],
    title: str = "",
    paper_reference: Optional[Dict[str, tuple]] = None,
) -> str:
    """Render results as a fixed-width text table (paper values optional)."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = f"{'instance':<20s} {'n':>5s} {'baseline':>10s} {'ILP':>10s} {'ratio':>7s}"
    if paper_reference:
        header += f"  {'paper base':>10s} {'paper ILP':>10s}"
    lines.append(header)
    lines.append("-" * len(header))
    for res in results:
        row = (
            f"{res.instance_name:<20s} {res.num_nodes:>5d} "
            f"{res.baseline_cost:>10.1f} {res.ilp_cost:>10.1f} {res.ratio:>7.2f}"
        )
        if paper_reference:
            ref = paper_reference.get(res.instance_name)
            if ref:
                row += f"  {ref[0]:>10.1f} {ref[1]:>10.1f}"
            else:
                row += f"  {'-':>10s} {'-':>10s}"
        lines.append(row)
    ratios = [res.ratio for res in results]
    lines.append("-" * len(header))
    lines.append(f"geometric-mean cost reduction: {geometric_mean(ratios):.3f}x")
    return "\n".join(lines)


def results_to_rows(results: Sequence[InstanceResult]) -> List[Dict[str, object]]:
    """Flatten results (including extra costs) into plain dict rows."""
    rows = []
    for res in results:
        row: Dict[str, object] = {
            "instance": res.instance_name,
            "nodes": res.num_nodes,
            "baseline_cost": res.baseline_cost,
            "ilp_cost": res.ilp_cost,
            "ratio": res.ratio,
            "solver_status": res.solver_status,
            "solve_time": res.solve_time,
        }
        for key, value in res.extra_costs.items():
            row[key] = value
        rows.append(row)
    return rows


def write_csv(results: Sequence[InstanceResult], path: PathLike) -> None:
    """Write results (one row per instance) to a CSV file."""
    rows = results_to_rows(results)
    if not rows:
        Path(path).write_text("")
        return
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def write_jsonl(results: Sequence[InstanceResult], path: PathLike) -> None:
    """Write results as JSONL (one serialized result per line)."""
    with open(path, "w") as handle:
        for res in results:
            handle.write(
                json.dumps(
                    {"instance": res.instance_name, "result": res.to_dict()},
                    sort_keys=True,
                )
                + "\n"
            )


def iter_jsonl_records(path: PathLike) -> Iterator[dict]:
    """Yield the well-formed records (dicts with a ``result`` key) of a
    JSONL results file, in file order.

    A true generator: the file is streamed line by line, so resuming a
    ~10\\ :sup:`5`-row results file never materializes the whole file in
    memory.  Malformed lines (e.g. a truncated final line after a crash)
    are skipped; this is the single parsing routine shared by
    :func:`read_jsonl` and the execution core's resume logic.
    """
    with open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                record["result"] = dict(record["result"])
            except (ValueError, KeyError, TypeError):
                continue
            yield record


def read_jsonl(path: PathLike) -> List[InstanceResult]:
    """Read results from a JSONL file written by :func:`write_jsonl` or
    streamed by the experiment engine (``results_path=...``)."""
    return [InstanceResult.from_dict(record["result"]) for record in iter_jsonl_records(path)]


def format_slo_table(summary: Dict[str, object], title: str = "") -> str:
    """Render a serve SLO summary (:meth:`repro.serve.ServiceReport.
    slo_summary`) as a fixed-width text table.

    Scalar metrics become ``name value`` rows; the ``spec_requests``
    breakdown becomes one indented row per spec, in the summary's (sorted)
    spec order.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = f"{'metric':<24s} {'value':>16s}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, value in summary.items():
        if name == "spec_requests":
            continue
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{name:<24s} {rendered:>16s}")
    specs = summary.get("spec_requests")
    if isinstance(specs, dict) and specs:
        lines.append("-" * len(header))
        lines.append("requests per pipeline spec:")
        for spec, count in specs.items():
            lines.append(f"  {spec:<36s} {count:>6d}")
    return "\n".join(lines)


def summarize_ratios(results_by_config: Dict[str, Sequence[InstanceResult]]) -> Dict[str, float]:
    """Geometric-mean improvement ratio per configuration (Figure 4 summary)."""
    return {
        name: geometric_mean([res.ratio for res in results])
        for name, results in results_by_config.items()
    }
