"""Reference values reported in the paper, used for side-by-side comparison.

The absolute costs are not expected to match (different DAG instances,
different ILP solver and time budget, different hardware — see DESIGN.md),
but the *shape* of the comparison should: the holistic ILP never does worse
than the two-stage baseline on the tiny dataset, the improvement shrinks at
``r = r0`` and in the asynchronous model, and the divide-and-conquer method
wins on partition-friendly DAGs while losing on the rest.
"""

from __future__ import annotations

# Table 1 / Table 3 (columns: baseline, ILP) — synchronous cost, P=4, r=3*r0
TABLE1 = {
    "bicgstab": (197, 181),
    "k-means": (158, 106),
    "pregel": (206, 152),
    "spmv_N6": (123, 79),
    "spmv_N7": (120, 77),
    "spmv_N10": (159, 96),
    "CG_N2_K2": (283, 267),
    "CG_N3_K1": (199, 195),
    "CG_N4_K1": (229, 208),
    "exp_N4_K2": (149, 91),
    "exp_N5_K3": (185, 144),
    "exp_N6_K4": (169, 168),
    "kNN_N4_K3": (179, 132),
    "kNN_N5_K3": (167, 108),
    "kNN_N6_K4": (180, 173),
}

# Table 3 extra columns: weak baseline (Cilk+LRU), BSP-ILP baseline, BSP-ILP + our ILP
TABLE3_EXTRA = {
    "bicgstab": (212, 135, 122),
    "k-means": (163, 100, 98),
    "pregel": (210, 160, 145),
    "spmv_N6": (166, 92, 79),
    "spmv_N7": (138, 92, 75),
    "spmv_N10": (190, 111, 94),
    "CG_N2_K2": (310, 214, 194),
    "CG_N3_K1": (263, 287, 281),
    "CG_N4_K1": (268, 324, 314),
    "exp_N4_K2": (152, 104, 90),
    "exp_N5_K3": (251, 214, 147),
    "exp_N6_K4": (225, 210, 200),
    "kNN_N4_K3": (170, 132, 108),
    "kNN_N5_K3": (192, 144, 108),
    "kNN_N6_K4": (241, 181, 178),
}

# Table 4 (baseline / ILP) for the alternative configurations
TABLE4 = {
    "r5":   {"bicgstab": (197, 146), "k-means": (158, 124), "pregel": (206, 148),
             "spmv_N6": (123, 79), "spmv_N7": (120, 75), "spmv_N10": (159, 96),
             "CG_N2_K2": (283, 193), "CG_N3_K1": (199, 194), "CG_N4_K1": (229, 219),
             "exp_N4_K2": (149, 95), "exp_N5_K3": (185, 166), "exp_N6_K4": (169, 167),
             "kNN_N4_K3": (179, 110), "kNN_N5_K3": (167, 120), "kNN_N6_K4": (180, 178)},
    "r1":   {"bicgstab": (221, 213), "k-means": (176, 173), "pregel": (222, 222),
             "spmv_N6": (167, 116), "spmv_N7": (134, 132), "spmv_N10": (215, 215),
             "CG_N2_K2": (366, 366), "CG_N3_K1": (343, 341), "CG_N4_K1": (343, 343),
             "exp_N4_K2": (201, 195), "exp_N5_K3": (261, 261), "exp_N6_K4": (257, 254),
             "kNN_N4_K3": (242, 242), "kNN_N5_K3": (213, 212), "kNN_N6_K4": (302, 297)},
    "p8":   {"bicgstab": (176, 173), "k-means": (156, 102), "pregel": (160, 138),
             "spmv_N6": (104, 75), "spmv_N7": (83, 68), "spmv_N10": (124, 69),
             "CG_N2_K2": (295, 291), "CG_N3_K1": (176, 176), "CG_N4_K1": (205, 202),
             "exp_N4_K2": (138, 84), "exp_N5_K3": (185, 182), "exp_N6_K4": (165, 165),
             "kNN_N4_K3": (143, 105), "kNN_N5_K3": (162, 101), "kNN_N6_K4": (190, 190)},
    "L0":   {"bicgstab": (117, 89), "k-means": (88, 74), "pregel": (146, 142),
             "spmv_N6": (83, 55), "spmv_N7": (80, 55), "spmv_N10": (119, 80),
             "CG_N2_K2": (163, 152), "CG_N3_K1": (129, 116), "CG_N4_K1": (159, 151),
             "exp_N4_K2": (89, 80), "exp_N5_K3": (115, 110), "exp_N6_K4": (99, 97),
             "kNN_N4_K3": (109, 95), "kNN_N5_K3": (107, 94), "kNN_N6_K4": (120, 111)},
    "async": {"bicgstab": (92, 83), "k-means": (75, 68), "pregel": (135, 118),
              "spmv_N6": (70, 54), "spmv_N7": (66, 50), "spmv_N10": (104, 79),
              "CG_N2_K2": (133, 133), "CG_N3_K1": (112, 107), "CG_N4_K1": (122, 122),
              "exp_N4_K2": (71, 67), "exp_N5_K3": (89, 89), "exp_N6_K4": (83, 80),
              "kNN_N4_K3": (78, 76), "kNN_N5_K3": (86, 84), "kNN_N6_K4": (87, 87)},
}

# Table 2 (baseline / divide-and-conquer ILP) on the larger dataset, r = 5*r0
TABLE2 = {
    "simple_pagerank": (1017, 779),
    "snni_graphchall.": (1531, 912),
    "spmv_N25": (425, 314),
    "spmv_N35": (685, 518),
    "CG_N5_K4": (847, 750),
    "CG_N7_K2": (701, 701),
    "exp_N10_K8": (573, 727),
    "exp_N15_K4": (512, 660),
    "kNN_N10_K8": (594, 682),
    "kNN_N15_K4": (517, 655),
}

# Section 7.2 geometric-mean cost-reduction factors (ILP cost / baseline cost)
GEOMEAN_RATIOS = {
    "base": 0.77,
    "r5": 0.76,
    "r1": 0.97,
    "p8": 0.82,
    "L0": 0.85,
    "async": 0.91,
    "vs_bsp_ilp": 0.88,
    "vs_cilk_lru": 0.66,
}
