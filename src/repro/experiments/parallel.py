"""Parallel experiment engine: fan ``(instance, config)`` jobs over processes.

The paper's experiments sweep many instances x many scheduler configurations;
historically every run executed strictly serially in one process.  This
module provides the architectural seam all experiment batches go through:

* :class:`ExperimentJob` — one picklable unit of work: an experiment *kind*
  (which per-instance runner to call), a serialized DAG, an
  :class:`~repro.experiments.runner.ExperimentConfig` and extra parameters.
  Every job has a stable content hash (:meth:`ExperimentJob.key`) over the
  DAG structure, weights and the full configuration — including the per-job
  ILP solver backend (``ExperimentConfig.ilp_backend``), so sweeps over
  different backends never collide in the result cache.
* :class:`ExperimentEngine` — since the ``repro.exec`` redesign a thin,
  behaviour-preserving shim over :class:`repro.exec.Session`, the unified
  async execution core.  A batch of jobs becomes an edge-free
  :class:`~repro.exec.plan.RunPlan`; the session executes it inline
  (``workers=1``) or on a process pool (``workers>1``) with bounded worker
  slots.  Results are returned in submission order, so a parallel run is
  *bit-identical* to the serial one whenever the jobs themselves are
  deterministic: two-stage pipelines always are, and ILP jobs are when
  solved to optimality or bounded by ``ExperimentConfig.ilp_node_limit``
  (with a time limit generous enough that the node limit is what binds).
  A *wall-clock*-limited ILP that hits its limit can return a different
  incumbent under CPU contention — use node limits (CLI: ``--node-limit``)
  for sweeps that must be exactly reproducible.
  The session services the engine exposes (see :mod:`repro.exec.store`):

  - the content-hash disk cache (``cache_dir=...``) — a re-run of the same
    batch performs zero solver calls;
  - JSONL result streaming (``results_path=...``) and *resume*
    (``resume=True``) of interrupted sweeps.

The engine is deliberately scheduler-agnostic: job kinds are dispatched in
:func:`execute_job`, and new kinds (e.g. the scheduler portfolio in
:mod:`repro.portfolio`) plug in without touching the execution core.
Callers that want streaming events, job graphs with ordering edges, the
in-pipeline concurrency of ``race(...)`` stages, or coordinator/worker
sharding across processes and machines (``Session.run_sharded``,
:mod:`repro.exec.shard`) should use the session API directly
(:mod:`repro.exec`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.dag.graph import ComputationalDag
from repro.dag.io import dag_from_dict, dag_to_dict
from repro.exceptions import ConfigurationError
from repro.exec.plan import RunPlan
from repro.exec.session import Session, SessionStats
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceResult,
    run_divide_and_conquer_instance,
    run_instance,
    run_instance_with_baselines,
)

PathLike = Union[str, Path]

#: Job kinds understood by :func:`execute_job`.
JOB_KINDS = ("instance", "baselines", "dac", "portfolio")


@dataclass(frozen=True)
class ExperimentJob:
    """One unit of work: run one experiment kind on one instance.

    The DAG is stored in its plain-dict form so jobs are cheap to pickle
    into worker processes and so the job hash covers the exact graph
    structure and weights rather than object identity.
    """

    kind: str
    dag_data: dict
    config: ExperimentConfig
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls,
        kind: str,
        dag: ComputationalDag,
        config: ExperimentConfig,
        **params,
    ) -> "ExperimentJob":
        """Build a job from a live DAG; extra kwargs become job parameters."""
        if kind not in JOB_KINDS:
            raise ConfigurationError(
                f"unknown experiment job kind {kind!r}; available: {JOB_KINDS}"
            )
        return cls(
            kind=kind,
            dag_data=dag_to_dict(dag),
            config=config,
            params=tuple(sorted(params.items())),
        )

    def dag(self) -> ComputationalDag:
        """Materialize the job's DAG."""
        return dag_from_dict(self.dag_data)

    @property
    def instance_name(self) -> str:
        return str(self.dag_data.get("name", "dag"))

    def key(self) -> str:
        """Stable content hash of the job (DAG + config + kind + params)."""
        payload = {
            "kind": self.kind,
            "dag": self.dag_data,
            "config": asdict(self.config),
            "params": [[k, v] for k, v in self.params],
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execute_job(job: ExperimentJob) -> InstanceResult:
    """Run one job to completion (this is the function worker processes run).

    The result carries per-job solver telemetry (``InstanceResult.
    solver_stats``): the number of MILP solves dispatched through the backend
    registry while the job ran, and the wall time spent inside the solvers,
    per backend.  The delta is computed inside the executing process, so it
    is correct both inline and under the process pool.
    """
    from repro import obs
    from repro.ilp.backends import solver_call_stats

    before = solver_call_stats().snapshot()
    span = obs.NULL_SCOPE
    traced = obs.tracing_enabled()
    if traced:
        span = obs.trace_span(
            "job.execute",
            category="session",
            kind=job.kind,
            instance=job.instance_name,
        )
    try:
        with span:
            result = _dispatch_job(job)
            if traced:
                span.set(cost=result.ilp_cost, status=result.solver_status)
    finally:
        if traced:
            # flush at the job boundary: pool/shard workers exit via
            # os._exit, so atexit never runs there and an unflushed
            # buffer would simply be lost
            obs.flush_observability()
    # merge (not overwrite): pipeline jobs pre-populate diagnostics such as
    # the shared-prefix reuse counters, which live next to the solver tally
    result.solver_stats = {
        **result.solver_stats,
        **solver_call_stats().delta_since(before),
    }
    return result


def _dispatch_job(job: ExperimentJob) -> InstanceResult:
    dag = job.dag()
    params = dict(job.params)
    if job.kind == "instance":
        return run_instance(dag, job.config)
    if job.kind == "baselines":
        return run_instance_with_baselines(dag, job.config)
    if job.kind == "dac":
        return run_divide_and_conquer_instance(dag, job.config, **params)
    if job.kind == "portfolio":
        # imported lazily: repro.portfolio itself submits through this engine
        from repro.portfolio.members import run_member

        member = str(params.pop("member"))
        return run_member(dag, job.config, member, **params)
    raise ConfigurationError(f"unknown experiment job kind {job.kind!r}")


#: Backwards-compatible alias: engine statistics *are* session statistics.
EngineStats = SessionStats


class ExperimentEngine:
    """Batch-of-jobs facade over the unified execution core.

    Every parameter maps one-to-one onto :class:`repro.exec.Session` (the
    engine owns one session for its whole lifetime, so the resume index,
    stream deduplication and statistics accumulate across :meth:`run`
    calls exactly as they historically did).  :meth:`run` wraps the job
    list in an edge-free :class:`~repro.exec.plan.RunPlan`; results come
    back in submission order, bit-identical to the pre-session engine
    (pinned by the golden equivalence and determinism suites).

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` executes inline (no pool).
    cache_dir:
        Directory for the on-disk result cache (one JSON file per job hash).
        Cache hits skip execution entirely — no solver is ever invoked.
    results_path:
        JSONL file to which completed results are streamed (one object per
        line: job key, kind, instance name, result).
    resume:
        If true and ``results_path`` exists, jobs whose key already appears
        in the file are not re-executed; their recorded results are returned.
    job_timeout:
        Optional per-job liveness bound in seconds for process-pool
        execution; exceeding it raises :class:`TimeoutError` without
        killing the stuck worker.  It does not apply to inline
        (``workers=1``) execution, and budgets never truncate a completed
        result, so results stay deterministic.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[PathLike] = None,
        results_path: Optional[PathLike] = None,
        resume: bool = False,
        job_timeout: Optional[float] = None,
    ) -> None:
        self.session = Session(
            workers=workers,
            cache_dir=cache_dir,
            results_path=results_path,
            resume=resume,
            job_timeout=job_timeout,
        )
        self.workers = self.session.workers
        self.cache_dir = self.session.cache.cache_dir
        self.results_path = self.session.log.results_path
        self.resume = resume
        self.job_timeout = job_timeout

    @property
    def stats(self) -> SessionStats:
        """The underlying session's statistics (shared object)."""
        return self.session.stats

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[ExperimentJob]) -> List[InstanceResult]:
        """Execute ``jobs`` and return their results in submission order."""
        return self.session.run(RunPlan.from_jobs(list(jobs)))

    def run_one(self, job: ExperimentJob) -> InstanceResult:
        """Convenience wrapper: run a single job."""
        return self.run([job])[0]


def run_jobs(
    jobs: Sequence[ExperimentJob],
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    results_path: Optional[PathLike] = None,
    resume: bool = False,
) -> List[InstanceResult]:
    """One-shot convenience wrapper around :class:`ExperimentEngine`."""
    engine = ExperimentEngine(
        workers=workers, cache_dir=cache_dir, results_path=results_path, resume=resume
    )
    return engine.run(jobs)
