"""Parallel experiment engine: fan ``(instance, config)`` jobs over processes.

The paper's experiments sweep many instances x many scheduler configurations;
historically every run executed strictly serially in one process.  This
module provides the architectural seam all experiment batches go through:

* :class:`ExperimentJob` — one picklable unit of work: an experiment *kind*
  (which per-instance runner to call), a serialized DAG, an
  :class:`~repro.experiments.runner.ExperimentConfig` and extra parameters.
  Every job has a stable content hash (:meth:`ExperimentJob.key`) over the
  DAG structure, weights and the full configuration — including the per-job
  ILP solver backend (``ExperimentConfig.ilp_backend``), so sweeps over
  different backends never collide in the result cache.
* :class:`ExperimentEngine` — executes a batch of jobs either inline
  (``workers=1``) or on a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``workers>1``; one fresh pool per batch — startup is negligible next to
  solver runtimes).  Results are returned in submission order, so a
  parallel run is *bit-identical* to the serial one whenever the jobs
  themselves are deterministic: two-stage pipelines always are, and ILP
  jobs are when solved to optimality or bounded by
  ``ExperimentConfig.ilp_node_limit`` (with a time limit generous enough
  that the node limit is what binds).  A *wall-clock*-limited ILP that
  hits its limit can return a different incumbent under CPU contention —
  use node limits (CLI: ``--node-limit``) for sweeps that must be exactly
  reproducible.
  The engine optionally

  - caches results on disk keyed by the job hash (``cache_dir=...``), so a
    re-run of the same batch performs zero solver calls;
  - streams every completed result to a JSONL file (``results_path=...``)
    and can *resume* an interrupted sweep from it (``resume=True``).

The engine is deliberately scheduler-agnostic: job kinds are dispatched in
:func:`execute_job`, and new kinds (e.g. the scheduler portfolio in
:mod:`repro.portfolio`) plug in without touching the pool/caching logic.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.dag.graph import ComputationalDag
from repro.dag.io import dag_from_dict, dag_to_dict
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceResult,
    run_divide_and_conquer_instance,
    run_instance,
    run_instance_with_baselines,
)

PathLike = Union[str, Path]

#: Job kinds understood by :func:`execute_job`.
JOB_KINDS = ("instance", "baselines", "dac", "portfolio")


@dataclass(frozen=True)
class ExperimentJob:
    """One unit of work: run one experiment kind on one instance.

    The DAG is stored in its plain-dict form so jobs are cheap to pickle
    into worker processes and so the job hash covers the exact graph
    structure and weights rather than object identity.
    """

    kind: str
    dag_data: dict
    config: ExperimentConfig
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls,
        kind: str,
        dag: ComputationalDag,
        config: ExperimentConfig,
        **params,
    ) -> "ExperimentJob":
        """Build a job from a live DAG; extra kwargs become job parameters."""
        if kind not in JOB_KINDS:
            raise ConfigurationError(
                f"unknown experiment job kind {kind!r}; available: {JOB_KINDS}"
            )
        return cls(
            kind=kind,
            dag_data=dag_to_dict(dag),
            config=config,
            params=tuple(sorted(params.items())),
        )

    def dag(self) -> ComputationalDag:
        """Materialize the job's DAG."""
        return dag_from_dict(self.dag_data)

    @property
    def instance_name(self) -> str:
        return str(self.dag_data.get("name", "dag"))

    def key(self) -> str:
        """Stable content hash of the job (DAG + config + kind + params)."""
        payload = {
            "kind": self.kind,
            "dag": self.dag_data,
            "config": asdict(self.config),
            "params": [[k, v] for k, v in self.params],
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execute_job(job: ExperimentJob) -> InstanceResult:
    """Run one job to completion (this is the function worker processes run).

    The result carries per-job solver telemetry (``InstanceResult.
    solver_stats``): the number of MILP solves dispatched through the backend
    registry while the job ran, and the wall time spent inside the solvers,
    per backend.  The delta is computed inside the executing process, so it
    is correct both inline and under the process pool.
    """
    from repro.ilp.backends import solver_call_stats

    before = solver_call_stats().snapshot()
    result = _dispatch_job(job)
    # merge (not overwrite): pipeline jobs pre-populate diagnostics such as
    # the shared-prefix reuse counters, which live next to the solver tally
    result.solver_stats = {
        **result.solver_stats,
        **solver_call_stats().delta_since(before),
    }
    return result


def _dispatch_job(job: ExperimentJob) -> InstanceResult:
    dag = job.dag()
    params = dict(job.params)
    if job.kind == "instance":
        return run_instance(dag, job.config)
    if job.kind == "baselines":
        return run_instance_with_baselines(dag, job.config)
    if job.kind == "dac":
        return run_divide_and_conquer_instance(dag, job.config, **params)
    if job.kind == "portfolio":
        # imported lazily: repro.portfolio itself submits through this engine
        from repro.portfolio.members import run_member

        member = str(params.pop("member"))
        return run_member(dag, job.config, member, **params)
    raise ConfigurationError(f"unknown experiment job kind {job.kind!r}")


@dataclass
class EngineStats:
    """Bookkeeping of one engine: how each job's result was obtained."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0

    def describe(self) -> str:
        return (
            f"{self.total} jobs: {self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.resumed} resumed"
        )


class ExperimentEngine:
    """Executes experiment jobs, in-process or across a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` executes inline (no pool).
    cache_dir:
        Directory for the on-disk result cache (one JSON file per job hash).
        Cache hits skip execution entirely — no solver is ever invoked.
    results_path:
        JSONL file to which completed results are streamed (one object per
        line: job key, kind, instance name, result).
    resume:
        If true and ``results_path`` exists, jobs whose key already appears
        in the file are not re-executed; their recorded results are returned.
    job_timeout:
        Optional bound, in seconds, on waiting for each job while collecting
        pool results (``concurrent.futures`` semantics: the clock starts
        when collection reaches the job, and exceeding it raises
        :class:`TimeoutError` without cancelling the running worker).  It is
        a liveness guard for parallel runs, not a hard per-job kill switch,
        and it does not apply to inline (``workers=1``) execution; budgets
        never truncate a completed result, so results stay deterministic.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[PathLike] = None,
        results_path: Optional[PathLike] = None,
        resume: bool = False,
        job_timeout: Optional[float] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.results_path = Path(results_path) if results_path else None
        self.resume = resume
        self.job_timeout = job_timeout
        self.stats = EngineStats()
        self._streamed_keys: set = set()
        # key -> result-dict index of the results file; loaded once per
        # engine (this engine is the only appender afterwards)
        self._recorded_index: Optional[Dict[str, dict]] = None
        if resume and self.results_path is None:
            warnings.warn(
                "resume=True without a results_path is a no-op: there is no "
                "results file to resume from, so every job will re-execute",
                UserWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[ExperimentJob]) -> List[InstanceResult]:
        """Execute ``jobs`` and return their results in submission order."""
        jobs = list(jobs)
        self.stats.total += len(jobs)
        results: List[Optional[InstanceResult]] = [None] * len(jobs)
        keys = [job.key() for job in jobs]

        recorded = self._load_recorded()
        pending: List[int] = []
        for i, key in enumerate(keys):
            if self.resume and key in recorded:
                result = InstanceResult.from_dict(recorded[key])
                results[i] = result
                self.stats.resumed += 1
                # keep the two stores consistent: a result resumed from the
                # JSONL file also becomes a disk-cache entry
                self._cache_store(key, result)
                continue
            cached = self._cache_load(key)
            if cached is not None:
                results[i] = cached
                self.stats.cache_hits += 1
                # the results file must record the whole batch, not only the
                # jobs that happened to miss the cache — but never a key the
                # file already holds (that would double-count on re-runs)
                self._stream(key, jobs[i], cached)
                continue
            pending.append(i)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                for i in pending:
                    result = execute_job(jobs[i])
                    self._complete(keys[i], jobs[i], result)
                    results[i] = result
            else:
                self._run_pool(jobs, keys, pending, results)
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - defensive: every path above fills its slot
            raise RuntimeError(f"engine produced no result for job indices {missing}")
        return results  # type: ignore[return-value]

    def _run_pool(
        self,
        jobs: List[ExperimentJob],
        keys: List[str],
        pending: List[int],
        results: List[Optional[InstanceResult]],
    ) -> None:
        """Execute the pending jobs on a process pool, collecting in
        submission order (so parallel results are identical to serial).

        On a ``job_timeout`` expiry the pool is abandoned without waiting
        (queued jobs cancelled, the stuck worker process orphaned) so the
        caller is actually unblocked; a ``with``-managed pool would block in
        ``shutdown(wait=True)`` on the hung job while unwinding.
        """
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(pending)))
        try:
            futures = {i: pool.submit(execute_job, jobs[i]) for i in pending}
            for i in pending:
                result = futures[i].result(timeout=self.job_timeout)
                self._complete(keys[i], jobs[i], result)
                results[i] = result
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)

    def run_one(self, job: ExperimentJob) -> InstanceResult:
        """Convenience wrapper: run a single job."""
        return self.run([job])[0]

    # ------------------------------------------------------------------
    # cache + results store
    # ------------------------------------------------------------------
    def _cache_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.json"

    def _cache_load(self, key: str) -> Optional[InstanceResult]:
        path = self._cache_path(key)
        if path is None or not path.is_file():
            return None
        try:
            return InstanceResult.from_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError):
            # a corrupt cache entry is treated as a miss and overwritten
            return None

    def _cache_store(self, key: str, result: InstanceResult) -> None:
        """Write (or repair) the disk-cache entry for ``key``."""
        path = self._cache_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(result.to_dict()))
        os.replace(tmp, path)

    def _complete(self, key: str, job: ExperimentJob, result: InstanceResult) -> None:
        self.stats.executed += 1
        self._cache_store(key, result)
        self._stream(key, job, result)

    def _stream(self, key: str, job: ExperimentJob, result: InstanceResult) -> None:
        """Append one result record to the JSONL results file (if any).

        Keys already present in the file (loaded in :meth:`run`) or already
        streamed by this engine are skipped, so re-running a batch against
        the same results file never double-counts an instance.
        """
        if self.results_path is None or key in self._streamed_keys:
            return
        self.results_path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "key": key,
            "kind": job.kind,
            "instance": job.instance_name,
            "result": result.to_dict(),
        }
        with open(self.results_path, "a") as handle:
            handle.write(json.dumps(record) + "\n")
        self._streamed_keys.add(key)
        if self._recorded_index is not None:
            self._recorded_index[key] = record["result"]

    def _load_recorded(self) -> Dict[str, dict]:
        """Job-key -> result-dict index of the JSONL results store.

        The file is parsed once per engine; subsequent :meth:`run` calls
        reuse the in-memory index (this engine is the file's only appender,
        and :meth:`_stream` keeps the index current).
        """
        if self._recorded_index is not None:
            return self._recorded_index
        if self.results_path is None or not self.results_path.is_file():
            self._recorded_index = {}
            return self._recorded_index
        from repro.experiments.reporting import iter_jsonl_records

        recorded: Dict[str, dict] = {}
        for record in iter_jsonl_records(self.results_path):
            if "key" in record:
                recorded[str(record["key"])] = record["result"]
        self._streamed_keys.update(recorded)
        self._recorded_index = recorded
        return recorded


def run_jobs(
    jobs: Sequence[ExperimentJob],
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    results_path: Optional[PathLike] = None,
    resume: bool = False,
) -> List[InstanceResult]:
    """One-shot convenience wrapper around :class:`ExperimentEngine`."""
    engine = ExperimentEngine(
        workers=workers, cache_dir=cache_dir, results_path=results_path, resume=resume
    )
    return engine.run(jobs)
