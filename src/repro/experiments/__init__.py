"""Experiment harness: datasets, runner, table/figure regeneration."""

from repro.experiments.datasets import (
    InstanceSpec,
    small_dataset,
    small_dataset_specs,
    tiny_dataset,
    tiny_dataset_specs,
)
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceResult,
    geometric_mean,
    run_dataset,
    run_instance,
    run_instance_with_baselines,
    run_divide_and_conquer_instance,
)
from repro.experiments.parallel import (
    EngineStats,
    ExperimentEngine,
    ExperimentJob,
    run_jobs,
)
from repro.experiments.reporting import (
    format_results_table,
    read_jsonl,
    results_to_rows,
    summarize_ratios,
    write_csv,
    write_jsonl,
)
from repro.experiments import paper_reference
from repro.experiments.tables import (
    geomean_summary,
    p1_experiment,
    recomputation_ablation,
    table1,
    table2,
    table3,
    table4,
    table4_configurations,
)
from repro.experiments.figures import (
    RatioSeries,
    Theorem41Point,
    figure4,
    render_figure4,
    theorem41_comparison,
)

__all__ = [
    "InstanceSpec",
    "small_dataset",
    "small_dataset_specs",
    "tiny_dataset",
    "tiny_dataset_specs",
    "ExperimentConfig",
    "InstanceResult",
    "geometric_mean",
    "run_dataset",
    "run_instance",
    "run_instance_with_baselines",
    "run_divide_and_conquer_instance",
    "EngineStats",
    "ExperimentEngine",
    "ExperimentJob",
    "run_jobs",
    "format_results_table",
    "read_jsonl",
    "results_to_rows",
    "summarize_ratios",
    "write_csv",
    "write_jsonl",
    "paper_reference",
    "geomean_summary",
    "p1_experiment",
    "recomputation_ablation",
    "table1",
    "table2",
    "table3",
    "table4",
    "table4_configurations",
    "RatioSeries",
    "Theorem41Point",
    "figure4",
    "render_figure4",
    "theorem41_comparison",
]
