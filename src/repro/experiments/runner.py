"""Experiment runner: schedules benchmark instances and collects costs.

All experiment functions in :mod:`repro.experiments.tables` and ``figures``
are thin wrappers around :func:`run_instance` / :func:`run_dataset`, which
execute the two-stage baselines and the ILP-based schedulers on one instance
and record the costs, improvement ratios and solver diagnostics.

:func:`run_dataset` routes every batch through the parallel experiment
engine (:mod:`repro.experiments.parallel`): pass ``workers=N`` to fan the
instances out over a process pool, ``cache_dir=...`` to reuse results across
invocations (keyed by an instance/config hash) and ``results_path=...`` /
``resume=True`` to stream results to a JSONL file and skip already-recorded
jobs.  The same knobs are exposed on the CLI (``repro experiment --workers N
--cache-dir DIR --resume``) and as environment variables for the benchmark
harness.

Environment knobs (respected by the default configuration):

* ``REPRO_ILP_TIME_LIMIT`` — per-ILP-solve time limit in seconds (default 10);
* ``REPRO_ILP_BACKEND`` — ILP solver backend for every solve dispatched by
  the configuration (``scipy``/``bnb``/``auto``; default ``scipy``, see
  :mod:`repro.ilp.backends`);
* ``REPRO_BENCH_SCALE`` — ``default`` or ``paper`` dataset scale;
* ``REPRO_BENCH_LIMIT`` — only run the first N instances of each dataset;
* ``REPRO_BENCH_WORKERS`` — worker processes for the experiment engine;
* ``REPRO_CACHE_DIR`` — on-disk result cache directory for the engine.

Malformed values of the knobs fall back to their defaults, but emit a
:class:`UserWarning` instead of being silently swallowed.
"""

from __future__ import annotations

import math
import os
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.dag.graph import ComputationalDag
from repro.ilp import SolverOptions, default_backend
from repro.model.instance import MbspInstance, make_instance
from repro.core.full_ilp import MbspIlpConfig
from repro.core.scheduler import MbspIlpScheduler
from repro.core.two_stage import baseline_schedule, run_two_stage
from repro.core.divide_conquer import DivideAndConquerScheduler
from repro.core.acyclic_partition import PartitionConfig
from repro.refine import RefineConfig, Refiner


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except (TypeError, ValueError):
        warnings.warn(
            f"ignoring malformed value {value!r} of environment variable {name} "
            f"(expected a float); using the default {default!r}",
            UserWarning,
            stacklevel=2,
        )
        return default


def _env_int(name: str, default: Optional[int]) -> Optional[int]:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except (TypeError, ValueError):
        warnings.warn(
            f"ignoring malformed value {value!r} of environment variable {name} "
            f"(expected an integer); using the default {default!r}",
            UserWarning,
            stacklevel=2,
        )
        return default


@dataclass
class ExperimentConfig:
    """Parameters of one experimental configuration (one column of Figure 4).

    The defaults reproduce the paper's base case: ``P = 4``, ``r = 3 * r0``,
    ``g = 1``, ``L = 10``, synchronous cost model.
    """

    name: str = "base"
    num_processors: int = 4
    cache_factor: float = 3.0
    g: float = 1.0
    L: float = 10.0
    synchronous: bool = True
    allow_recomputation: bool = True
    ilp_time_limit: float = field(default_factory=lambda: _env_float("REPRO_ILP_TIME_LIMIT", 10.0))
    ilp_node_limit: Optional[int] = None
    # resolved at construction time (env: REPRO_ILP_BACKEND) so that the
    # parallel engine's content-hash job keys cover the backend actually used
    ilp_backend: str = field(default_factory=default_backend)
    step_cap: Optional[int] = None
    seed: int = 0
    # local-search refinement knobs; part of the engine job hash, so sweeps
    # with different refinement settings never collide in the result cache.
    # ``refine.enabled`` switches post-optimization on for the per-instance
    # runners; the explicit "<member>+refine" portfolio members refine
    # regardless (using these budget/seed/strategy knobs).
    refine: RefineConfig = field(default_factory=RefineConfig)

    def instance_for(self, dag: ComputationalDag) -> MbspInstance:
        return make_instance(
            dag,
            num_processors=self.num_processors,
            cache_factor=self.cache_factor,
            g=self.g,
            L=self.L,
        )

    def ilp_config(self) -> MbspIlpConfig:
        # a node limit (when set) bounds the solve by branch-and-bound nodes
        # instead of wall clock, which keeps time-pressured results
        # deterministic across differently-loaded machines
        return MbspIlpConfig(
            synchronous=self.synchronous,
            allow_recomputation=self.allow_recomputation,
            max_steps=self.step_cap,
            solver_options=SolverOptions(
                time_limit=self.ilp_time_limit, node_limit=self.ilp_node_limit
            ),
            backend=self.ilp_backend,
        )

    def variant(self, **changes) -> "ExperimentConfig":
        """A copy of this configuration with some fields changed."""
        return replace(self, **changes)


@dataclass
class InstanceResult:
    """Costs collected for one benchmark instance under one configuration."""

    instance_name: str
    num_nodes: int
    baseline_cost: float
    ilp_cost: float
    solver_status: str = ""
    solve_time: float = 0.0
    extra_costs: Dict[str, float] = field(default_factory=dict)
    #: per-job solver telemetry (``solver_calls`` / ``solver_time`` totals
    #: plus per-backend breakdowns), attached by the experiment engine.
    #: Excluded from :meth:`fingerprint`: call counts are deterministic but
    #: the times are wall clock.
    solver_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """ILP cost over baseline cost (<= 1 means the ILP improved)."""
        if self.baseline_cost == 0:
            return 1.0
        return self.ilp_cost / self.baseline_cost

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict representation (JSON-serializable), for the result cache."""
        return {
            "instance_name": self.instance_name,
            "num_nodes": self.num_nodes,
            "baseline_cost": self.baseline_cost,
            "ilp_cost": self.ilp_cost,
            "solver_status": self.solver_status,
            "solve_time": self.solve_time,
            "extra_costs": dict(self.extra_costs),
            "solver_stats": dict(self.solver_stats),
        }

    def fingerprint(self) -> Dict[str, object]:
        """Deterministic part of the result: :meth:`to_dict` without timings.

        Two runs of the same job (serial vs. parallel, fresh vs. cached)
        must produce equal fingerprints; ``solve_time`` and the
        ``solver_stats`` telemetry are wall-clock diagnostics and are
        excluded.
        """
        data = self.to_dict()
        data.pop("solve_time", None)
        data.pop("solver_stats", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InstanceResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            instance_name=str(data["instance_name"]),
            num_nodes=int(data["num_nodes"]),
            baseline_cost=float(data["baseline_cost"]),
            ilp_cost=float(data["ilp_cost"]),
            solver_status=str(data.get("solver_status", "")),
            solve_time=float(data.get("solve_time", 0.0)),
            extra_costs={k: float(v) for k, v in dict(data.get("extra_costs", {})).items()},
            solver_stats={k: float(v) for k, v in dict(data.get("solver_stats", {})).items()},
        )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (1.0 for an empty sequence)."""
    values = [v for v in values if v > 0]
    if not values:
        return 1.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_instance(
    dag: ComputationalDag,
    config: ExperimentConfig,
    *,
    instance: Optional[MbspInstance] = None,
    baseline=None,
) -> InstanceResult:
    """Run the main comparison (two-stage baseline vs. full ILP) on one DAG.

    ``instance`` and ``baseline`` let callers that already materialized them
    (e.g. the portfolio's bound-pruning check) avoid recomputing; both must
    stem from the same ``config`` when provided.
    """
    if instance is None:
        instance = config.instance_for(dag)
    base = baseline if baseline is not None else baseline_schedule(
        instance, synchronous=config.synchronous, seed=config.seed
    )
    scheduler = MbspIlpScheduler(config.ilp_config())
    result = scheduler.schedule(instance, baseline=base)
    ilp_cost = result.best_cost
    extra: Dict[str, float] = {}
    if config.refine.enabled:
        refined = Refiner(config.refine).refine(
            result.best_schedule, synchronous=config.synchronous
        )
        extra = refined.telemetry(result.best_cost)
        ilp_cost = min(ilp_cost, refined.final_cost)
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=base.cost,
        ilp_cost=ilp_cost,
        solver_status=result.solver_status,
        solve_time=result.solve_time,
        extra_costs=extra,
    )


def run_dataset(
    dags: Sequence[ComputationalDag],
    config: ExperimentConfig,
    verbose: bool = False,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    results_path: Optional[str] = None,
    resume: bool = False,
    kind: str = "instance",
    engine=None,
    **job_params,
) -> List[InstanceResult]:
    """Run one experiment ``kind`` over a dataset through the parallel engine.

    ``kind`` selects the per-instance runner (``"instance"``,
    ``"baselines"`` or ``"dac"``, see :mod:`repro.experiments.parallel`);
    extra keyword arguments are forwarded to it.  With the default
    ``workers=1`` and no cache the behaviour (and the results) are identical
    to the historical serial loop.
    """
    from repro.experiments.parallel import ExperimentEngine, ExperimentJob

    if engine is None:
        engine = ExperimentEngine(
            workers=workers, cache_dir=cache_dir, results_path=results_path, resume=resume
        )
    start = time.perf_counter()
    jobs = [ExperimentJob.make(kind, dag, config, **job_params) for dag in dags]
    results = engine.run(jobs)
    if verbose:  # pragma: no cover - console convenience
        for result in results:
            print(
                f"  {result.instance_name:<18s} base={result.baseline_cost:8.1f} "
                f"ilp={result.ilp_cost:8.1f} ratio={result.ratio:.2f}"
            )
        print(
            f"  [{len(results)} results in {time.perf_counter() - start:.1f}s; "
            f"{engine.stats.describe()}]"
        )
    return results


def run_instance_with_baselines(dag: ComputationalDag, config: ExperimentConfig) -> InstanceResult:
    """The Table 3 comparison: all baselines plus ILPs started from each.

    Collected extra costs: ``weak`` (Cilk + LRU), ``bsp_ilp`` (ILP-based BSP
    scheduler + clairvoyant), ``bsp_ilp_plus_ilp`` (our ILP initialised with
    the stronger baseline).
    """
    instance = config.instance_for(dag)
    base = baseline_schedule(instance, synchronous=config.synchronous, seed=config.seed)
    scheduler = MbspIlpScheduler(config.ilp_config())
    main = scheduler.schedule(instance, baseline=base)

    weak = run_two_stage(
        instance, scheduler="cilk", policy="lru", synchronous=config.synchronous, seed=config.seed
    )
    from repro.bsp.ilp import BspIlpConfig

    bsp_ilp_base = run_two_stage(
        instance,
        scheduler="bsp-ilp",
        policy="clairvoyant",
        synchronous=config.synchronous,
        seed=config.seed,
        bsp_ilp_config=BspIlpConfig(
            solver_options=SolverOptions(time_limit=max(config.ilp_time_limit / 2, 2.0)),
            backend=config.ilp_backend,
        ),
    )
    stronger = scheduler.schedule(instance, baseline=bsp_ilp_base)

    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=base.cost,
        ilp_cost=main.best_cost,
        solver_status=main.solver_status,
        solve_time=main.solve_time,
        extra_costs={
            "weak": weak.cost,
            "bsp_ilp": bsp_ilp_base.cost,
            "bsp_ilp_plus_ilp": stronger.best_cost,
        },
    )


def run_divide_and_conquer(
    dag: ComputationalDag,
    config: ExperimentConfig,
    max_part_size: int = 22,
    partition_time_limit: float = 3.0,
    instance: Optional[MbspInstance] = None,
):
    """Run the divide-and-conquer scheduler; returns its full result object.

    Used by :func:`run_divide_and_conquer_instance` (which reduces it to an
    :class:`InstanceResult`) and by the refined ``dac+refine`` portfolio
    member, which needs the actual schedule to post-optimize.  A caller that
    already materialized the ``instance`` (e.g. for a bound check) can pass
    it to avoid rebuilding.
    """
    if instance is None:
        instance = config.instance_for(dag)
    base = baseline_schedule(instance, synchronous=config.synchronous, seed=config.seed)
    scheduler = DivideAndConquerScheduler(
        ilp_config=config.ilp_config(),
        partition_config=PartitionConfig(
            max_part_size=max_part_size,
            solver_options=SolverOptions(time_limit=partition_time_limit),
            backend=config.ilp_backend,
        ),
    )
    return scheduler.schedule(instance, baseline=base)


def run_divide_and_conquer_instance(
    dag: ComputationalDag,
    config: ExperimentConfig,
    max_part_size: int = 22,
    partition_time_limit: float = 3.0,
) -> InstanceResult:
    """The Table 2 comparison: two-stage baseline vs. divide-and-conquer ILP.

    Unlike the warm-started full ILP, the divide-and-conquer schedule is
    reported as-is (it can be worse than the baseline, as in the paper).
    """
    result = run_divide_and_conquer(
        dag,
        config,
        max_part_size=max_part_size,
        partition_time_limit=partition_time_limit,
    )
    dac_cost = result.dac_cost
    extra: Dict[str, float] = {"parts": float(result.partition.num_parts)}
    if config.refine.enabled:
        # opt-in post-optimization (``--refine``): the refined cost replaces
        # the as-is divide-and-conquer cost, never making it worse
        refined = Refiner(config.refine).refine(
            result.dac_schedule, synchronous=config.synchronous
        )
        extra.update(refined.telemetry(dac_cost))
        dac_cost = min(dac_cost, refined.final_cost)
    return InstanceResult(
        instance_name=dag.name,
        num_nodes=dag.num_nodes,
        baseline_cost=result.baseline.cost,
        ilp_cost=dac_cost,
        solver_status="divide-and-conquer",
        extra_costs=extra,
    )


def dataset_scale() -> str:
    """The dataset scale selected through ``REPRO_BENCH_SCALE``.

    Unknown values warn and fall back to ``"default"``, matching the
    warn-and-fall-back convention of the other ``REPRO_*`` knobs
    (``REPRO_ILP_BACKEND`` et al.) instead of being silently swallowed.
    """
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale in ("default", "paper"):
        return scale
    warnings.warn(
        f"ignoring unknown value {scale!r} of environment variable "
        f"REPRO_BENCH_SCALE (expected 'default' or 'paper'); using 'default'",
        UserWarning,
        stacklevel=2,
    )
    return "default"


def dataset_limit() -> Optional[int]:
    """Optional instance-count limit from ``REPRO_BENCH_LIMIT``."""
    return _env_int("REPRO_BENCH_LIMIT", None)


def env_bench_workers(default: int = 1) -> int:
    """Engine/session worker count from ``REPRO_BENCH_WORKERS``.

    Malformed values (non-integers — already warned about by the shared
    parser — and non-positive counts) warn and fall back to ``default``,
    matching the ``REPRO_ILP_BACKEND`` / ``REPRO_BENCH_SCALE`` convention.
    """
    value = _env_int("REPRO_BENCH_WORKERS", default)
    if value is None:
        return max(1, int(default))
    if value < 1:
        warnings.warn(
            f"ignoring non-positive value {value!r} of environment variable "
            f"REPRO_BENCH_WORKERS (expected a worker count >= 1); using the "
            f"default {default!r}",
            UserWarning,
            stacklevel=2,
        )
        return max(1, int(default))
    return int(value)


def env_cache_dir() -> Optional[str]:
    """Result-cache directory from ``REPRO_CACHE_DIR`` (``None`` = disabled).

    A value pointing at an existing non-directory warns and disables the
    cache instead of failing every job's cache write, matching the
    warn-and-fall-back convention of the other ``REPRO_*`` knobs.
    """
    value = os.environ.get("REPRO_CACHE_DIR")
    if value is None or not value.strip():
        return None
    path = value.strip()
    if os.path.exists(path) and not os.path.isdir(path):
        warnings.warn(
            f"ignoring value {path!r} of environment variable REPRO_CACHE_DIR: "
            f"it exists but is not a directory; running without a result cache",
            UserWarning,
            stacklevel=2,
        )
        return None
    return path
