"""Regeneration of the paper's tables (Tables 1-4) and related experiments.

Every function returns the list of :class:`InstanceResult` rows it produced
(so benchmarks and tests can assert on them) and can print a formatted table
comparable to the corresponding table in the paper.

All table functions submit their instance batches through the parallel
experiment engine (:mod:`repro.experiments.parallel`).  Pass a pre-built
:class:`~repro.experiments.parallel.ExperimentEngine` (``engine=...``) to
parallelise, cache or stream a sweep — its worker budget, cache and stats
are then shared across every batch submitted to it (see ``repro.cli`` for
the canonical wiring of ``--workers``/``--cache-dir``/``--results``/
``--resume``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dag.graph import ComputationalDag
from repro.experiments import paper_reference
from repro.experiments.datasets import small_dataset, tiny_dataset
from repro.experiments.reporting import format_results_table
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceResult,
    dataset_limit,
    dataset_scale,
    geometric_mean,
    run_dataset,
)


def _tiny(limit: Optional[int] = None) -> List[ComputationalDag]:
    return tiny_dataset(scale=dataset_scale(), limit=limit or dataset_limit())


def _small(limit: Optional[int] = None) -> List[ComputationalDag]:
    return small_dataset(scale=dataset_scale(), limit=limit or dataset_limit())


# ----------------------------------------------------------------------
# Table 1: baseline vs. ILP on the tiny dataset (base configuration)
# ----------------------------------------------------------------------
def table1(
    config: Optional[ExperimentConfig] = None,
    limit: Optional[int] = None,
    verbose: bool = False,
    engine=None,
) -> List[InstanceResult]:
    """Synchronous MBSP cost of the two-stage baseline vs. the full ILP."""
    config = config or ExperimentConfig(name="base")
    results = run_dataset(_tiny(limit), config, verbose=verbose, engine=engine)
    if verbose:  # pragma: no cover
        print(format_results_table(results, "Table 1 (base case)", paper_reference.TABLE1))
    return results


# ----------------------------------------------------------------------
# Table 3: all baselines (weak, main, BSP-ILP) and the ILPs on top of them
# ----------------------------------------------------------------------
def table3(
    config: Optional[ExperimentConfig] = None,
    limit: Optional[int] = None,
    verbose: bool = False,
    engine=None,
) -> List[InstanceResult]:
    """The five-column comparison of Table 3 on the tiny dataset."""
    config = config or ExperimentConfig(name="base")
    results = run_dataset(_tiny(limit), config, kind="baselines", engine=engine)
    if verbose:  # pragma: no cover
        print(format_results_table(results, "Table 3 (main columns)", paper_reference.TABLE1))
    return results


# ----------------------------------------------------------------------
# Table 4: alternative configurations (r=5r0, r=r0, P=8, L=0, async)
# ----------------------------------------------------------------------
def table4_configurations(base: Optional[ExperimentConfig] = None) -> Dict[str, ExperimentConfig]:
    """The five alternative configurations of Table 4 (plus the base case)."""
    base = base or ExperimentConfig(name="base")
    return {
        "base": base,
        "r5": base.variant(name="r5", cache_factor=5.0),
        "r1": base.variant(name="r1", cache_factor=1.0),
        "p8": base.variant(name="p8", num_processors=8),
        "L0": base.variant(name="L0", L=0.0),
        "async": base.variant(name="async", synchronous=False),
    }


def table4(
    base_config: Optional[ExperimentConfig] = None,
    limit: Optional[int] = None,
    configurations: Optional[Sequence[str]] = None,
    verbose: bool = False,
    engine=None,
) -> Dict[str, List[InstanceResult]]:
    """Baseline / ILP costs for the alternative parameter settings.

    Pass a pre-built engine to share one pool/cache/stats line across the
    whole sweep (the CLI does).
    """
    configs = table4_configurations(base_config)
    if configurations:
        configs = {k: v for k, v in configs.items() if k in set(configurations)}
    dags = _tiny(limit)
    out: Dict[str, List[InstanceResult]] = {}
    for name, config in configs.items():
        out[name] = run_dataset(dags, config, verbose=verbose, engine=engine)
        if verbose:  # pragma: no cover
            ref = paper_reference.TABLE4.get(name, paper_reference.TABLE1)
            print(format_results_table(out[name], f"Table 4 [{name}]", ref))
    return out


# ----------------------------------------------------------------------
# Table 2: divide-and-conquer ILP on the larger dataset
# ----------------------------------------------------------------------
def table2(
    config: Optional[ExperimentConfig] = None,
    limit: Optional[int] = None,
    max_part_size: int = 22,
    verbose: bool = False,
    engine=None,
) -> List[InstanceResult]:
    """Baseline vs. divide-and-conquer ILP on the "small" dataset (r=5*r0)."""
    config = config or ExperimentConfig(name="table2", cache_factor=5.0)
    results = run_dataset(
        _small(limit), config, kind="dac", max_part_size=max_part_size, engine=engine
    )
    if verbose:  # pragma: no cover
        print(format_results_table(results, "Table 2 (divide-and-conquer)", paper_reference.TABLE2))
    return results


# ----------------------------------------------------------------------
# Section 7.2: single-processor (red-blue pebbling) experiment
# ----------------------------------------------------------------------
def p1_experiment(
    config: Optional[ExperimentConfig] = None,
    limit: Optional[int] = None,
    verbose: bool = False,
    engine=None,
) -> List[InstanceResult]:
    """P = 1: DFS + clairvoyant baseline vs. the ILP (rarely improves)."""
    config = (config or ExperimentConfig()).variant(name="p1", num_processors=1)
    results = run_dataset(_tiny(limit), config, verbose=verbose, engine=engine)
    if verbose:  # pragma: no cover
        print(format_results_table(results, "Single-processor red-blue pebbling (P=1)"))
    return results


# ----------------------------------------------------------------------
# Section 7.2: prohibiting recomputation
# ----------------------------------------------------------------------
def recomputation_ablation(
    config: Optional[ExperimentConfig] = None,
    limit: Optional[int] = None,
    verbose: bool = False,
    engine=None,
) -> Dict[str, List[InstanceResult]]:
    """ILP with and without recomputation allowed (cost increase up to ~1.4x)."""
    base = config or ExperimentConfig(name="with_recompute")
    no_recompute = base.variant(name="no_recompute", allow_recomputation=False)
    dags = _tiny(limit)
    results = {
        "with_recompute": run_dataset(dags, base, verbose=verbose, engine=engine),
        "no_recompute": run_dataset(dags, no_recompute, verbose=verbose, engine=engine),
    }
    if verbose:  # pragma: no cover
        pairs = zip(results["with_recompute"], results["no_recompute"])
        for with_rec, without in pairs:
            factor = without.ilp_cost / max(with_rec.ilp_cost, 1e-9)
            print(f"  {with_rec.instance_name:<18s} recompute={with_rec.ilp_cost:8.1f} "
                  f"no-recompute={without.ilp_cost:8.1f} factor={factor:.2f}")
    return results


# ----------------------------------------------------------------------
# Summary helper mirroring the Section 7.2 headline numbers
# ----------------------------------------------------------------------
def geomean_summary(results_by_config: Dict[str, List[InstanceResult]]) -> Dict[str, float]:
    """Geometric-mean ILP/baseline ratio per configuration."""
    return {
        name: geometric_mean([r.ratio for r in results])
        for name, results in results_by_config.items()
    }
