"""Benchmark workload datasets.

The paper evaluates on the computational DAG benchmark of [36]: a "tiny"
dataset of 15 DAGs with 40-80 nodes and a "small" dataset (264-464 nodes).
That dataset is not redistributable, so this module regenerates structurally
analogous instances from the workload families it contains (coarse-grained
BiCGSTAB / k-means / Pregel task graphs, fine-grained CG, SpMV, iterated
SpMV and k-NN computations, plus PageRank and sparse-NN inference for the
larger set).

Two scales are provided:

* ``scale="default"`` — reduced instance sizes (roughly 15-60 nodes for the
  tiny set, 70-150 for the small set) so that the ILP experiments finish on a
  laptop-class machine within seconds per instance;
* ``scale="paper"`` — parameters chosen so the node counts match the original
  dataset (40-80 and ~250-460 nodes); use these with generous solver time
  limits to mirror the paper's setup more closely.

Memory weights are drawn uniformly at random from {1, ..., 5} per node with a
per-instance seed, exactly as described in Appendix D.1.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.dag.analysis import assign_random_memory_weights
from repro.dag.graph import ComputationalDag
from repro.dag.generators import (
    bicgstab,
    conjugate_gradient,
    iterated_spmv,
    kmeans,
    knn_iteration,
    pregel,
    simple_pagerank,
    snni_graphchallenge,
    spmv,
)

MEMORY_WEIGHT_SEED = 20250617


@dataclass(frozen=True)
class InstanceSpec:
    """One named benchmark instance: a generator plus its parameters."""

    name: str
    family: str
    builder: Callable[[], ComputationalDag]

    def build(self) -> ComputationalDag:
        """Generate the DAG and attach the random memory weights.

        The per-instance seed uses a *stable* hash of the name (crc32):
        ``hash()`` on strings is salted per process, which silently made the
        "seeded" datasets differ between invocations (and defeated the
        experiment engine's cross-run result cache).
        """
        dag = self.builder()
        dag.name = self.name
        seed = MEMORY_WEIGHT_SEED + zlib.crc32(self.name.encode("utf-8")) % 10_000
        assign_random_memory_weights(dag, low=1, high=5, seed=seed)
        return dag


def _tiny_specs_default() -> List[InstanceSpec]:
    return [
        InstanceSpec("bicgstab", "coarse", lambda: bicgstab(iterations=1)),
        InstanceSpec("k-means", "coarse", lambda: kmeans(2, 2, 2)),
        InstanceSpec("pregel", "coarse", lambda: pregel(2, 3)),
        InstanceSpec("spmv_N6", "spmv", lambda: spmv(4, extra_per_row=2, seed=6)),
        InstanceSpec("spmv_N7", "spmv", lambda: spmv(5, extra_per_row=1, seed=7)),
        InstanceSpec("spmv_N10", "spmv", lambda: spmv(6, extra_per_row=1, seed=10)),
        InstanceSpec("CG_N2_K2", "cg", lambda: conjugate_gradient(2, 1, seed=22)),
        InstanceSpec("exp_N4_K2", "exp", lambda: iterated_spmv(3, 2, seed=42)),
        InstanceSpec("exp_N5_K3", "exp", lambda: iterated_spmv(4, 2, extra_per_row=1, seed=53)),
        InstanceSpec("exp_N6_K4", "exp", lambda: iterated_spmv(4, 3, extra_per_row=1, seed=64)),
        InstanceSpec("kNN_N4_K3", "knn", lambda: knn_iteration(3, 2, k=2, seed=43)),
        InstanceSpec("kNN_N5_K3", "knn", lambda: knn_iteration(4, 2, k=2, seed=53)),
        InstanceSpec("kNN_N6_K4", "knn", lambda: knn_iteration(3, 3, k=2, seed=64)),
    ]


def _tiny_specs_paper() -> List[InstanceSpec]:
    return [
        InstanceSpec("bicgstab", "coarse", lambda: bicgstab(iterations=3)),
        InstanceSpec("k-means", "coarse", lambda: kmeans(3, 2, 3)),
        InstanceSpec("pregel", "coarse", lambda: pregel(4, 4)),
        InstanceSpec("spmv_N6", "spmv", lambda: spmv(6, seed=6)),
        InstanceSpec("spmv_N7", "spmv", lambda: spmv(7, seed=7)),
        InstanceSpec("spmv_N10", "spmv", lambda: spmv(10, seed=10)),
        InstanceSpec("CG_N2_K2", "cg", lambda: conjugate_gradient(2, 1, seed=22)),
        InstanceSpec("CG_N3_K1", "cg", lambda: conjugate_gradient(2, 1, seed=31)),
        InstanceSpec("CG_N4_K1", "cg", lambda: conjugate_gradient(2, 2, seed=41)),
        InstanceSpec("exp_N4_K2", "exp", lambda: iterated_spmv(4, 2, seed=42)),
        InstanceSpec("exp_N5_K3", "exp", lambda: iterated_spmv(5, 3, seed=53)),
        InstanceSpec("exp_N6_K4", "exp", lambda: iterated_spmv(6, 4, seed=64)),
        InstanceSpec("kNN_N4_K3", "knn", lambda: knn_iteration(4, 3, k=2, seed=43)),
        InstanceSpec("kNN_N5_K3", "knn", lambda: knn_iteration(5, 3, k=2, seed=53)),
        InstanceSpec("kNN_N6_K4", "knn", lambda: knn_iteration(6, 4, k=2, seed=64)),
    ]


def _small_specs_default() -> List[InstanceSpec]:
    return [
        InstanceSpec("simple_pagerank", "coarse", lambda: simple_pagerank(5, 5, seed=1)),
        InstanceSpec("snni_graphchall.", "coarse", lambda: snni_graphchallenge(4, 6, seed=2)),
        InstanceSpec("spmv_N25", "spmv", lambda: spmv(12, extra_per_row=2, seed=25)),
        InstanceSpec("spmv_N35", "spmv", lambda: spmv(16, extra_per_row=2, seed=35)),
        InstanceSpec("CG_N5_K4", "cg", lambda: conjugate_gradient(2, 2, seed=54)),
        InstanceSpec("CG_N7_K2", "cg", lambda: conjugate_gradient(3, 1, seed=72)),
        InstanceSpec("exp_N10_K8", "exp", lambda: iterated_spmv(5, 4, seed=108)),
        InstanceSpec("exp_N15_K4", "exp", lambda: iterated_spmv(6, 3, seed=154)),
        InstanceSpec("kNN_N10_K8", "knn", lambda: knn_iteration(6, 4, k=2, seed=108)),
        InstanceSpec("kNN_N15_K4", "knn", lambda: knn_iteration(8, 3, k=2, seed=154)),
    ]


def _small_specs_paper() -> List[InstanceSpec]:
    return [
        InstanceSpec("simple_pagerank", "coarse", lambda: simple_pagerank(8, 6, seed=1)),
        InstanceSpec("snni_graphchall.", "coarse", lambda: snni_graphchallenge(6, 8, seed=2)),
        InstanceSpec("spmv_N25", "spmv", lambda: spmv(25, extra_per_row=3, seed=25)),
        InstanceSpec("spmv_N35", "spmv", lambda: spmv(35, extra_per_row=3, seed=35)),
        InstanceSpec("CG_N5_K4", "cg", lambda: conjugate_gradient(3, 2, seed=54)),
        InstanceSpec("CG_N7_K2", "cg", lambda: conjugate_gradient(4, 1, seed=72)),
        InstanceSpec("exp_N10_K8", "exp", lambda: iterated_spmv(8, 6, seed=108)),
        InstanceSpec("exp_N15_K4", "exp", lambda: iterated_spmv(10, 4, seed=154)),
        InstanceSpec("kNN_N10_K8", "knn", lambda: knn_iteration(8, 6, k=3, seed=108)),
        InstanceSpec("kNN_N15_K4", "knn", lambda: knn_iteration(10, 4, k=3, seed=154)),
    ]


def tiny_dataset_specs(scale: str = "default") -> List[InstanceSpec]:
    """Instance specifications of the "tiny" dataset (the main experiments)."""
    if scale == "paper":
        return _tiny_specs_paper()
    if scale == "default":
        return _tiny_specs_default()
    raise ValueError(f"unknown scale {scale!r}; use 'default' or 'paper'")


def small_dataset_specs(scale: str = "default") -> List[InstanceSpec]:
    """Instance specifications of the "small" dataset (divide-and-conquer)."""
    if scale == "paper":
        return _small_specs_paper()
    if scale == "default":
        return _small_specs_default()
    raise ValueError(f"unknown scale {scale!r}; use 'default' or 'paper'")


def tiny_dataset(scale: str = "default", limit: Optional[int] = None) -> List[ComputationalDag]:
    """Build the tiny-dataset DAGs (optionally only the first ``limit``)."""
    specs = tiny_dataset_specs(scale)
    if limit is not None:
        specs = specs[:limit]
    return [spec.build() for spec in specs]


def small_dataset(scale: str = "default", limit: Optional[int] = None) -> List[ComputationalDag]:
    """Build the small-dataset DAGs (optionally only the first ``limit``)."""
    specs = small_dataset_specs(scale)
    if limit is not None:
        specs = specs[:limit]
    return [spec.build() for spec in specs]
