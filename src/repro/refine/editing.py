"""Incremental cost accounting and undoable editing of MBSP schedules.

The refinement engine examines thousands of candidate moves per schedule;
recomputing :func:`~repro.model.cost.schedule_cost` from scratch for every
candidate would dominate the runtime.  This module provides the two layers
that make move evaluation cheap:

* :class:`IncrementalCost` — mirrors the synchronous cost decomposition
  (per-superstep, per-processor compute/save/load sums plus the per-step
  ``L`` term for non-empty steps) and updates the total in ``O(P)`` per
  edited superstep instead of ``O(schedule)``;
* :class:`ScheduleEditor` — the only mutation path the move classes use.
  Every primitive edit updates the schedule *and* the cost state together,
  records an inverse closure for rollback, and tracks the affected superstep
  range so validity can be re-checked by a localized suffix replay
  (:class:`repro.refine.validation.IncrementalValidator`).

A move is therefore: ``editor.begin()`` — apply primitives — read
``editor.cost.total`` — and either ``commit()`` or ``rollback()``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dag.graph import NodeId
from repro.model.pebbling import Operation, OpType
from repro.model.schedule import MbspSchedule, Superstep

#: Names of the three node-list phases a :class:`ScheduleEditor` can edit.
PHASES = ("save", "delete", "load")


class IncrementalCost:
    """Synchronous-cost state of a schedule, maintained under edits.

    The synchronous cost is ``sum_s [max_p comp(s,p) + max_p save(s,p) +
    max_p load(s,p) + L]`` over non-empty supersteps.  The per-cell sums are
    kept explicitly; editing one cell refreshes only that superstep's
    contribution.
    """

    def __init__(self, schedule: MbspSchedule) -> None:
        instance = schedule.instance
        self.dag = instance.dag
        self.g = instance.g
        self.L = instance.L
        self.num_processors = instance.num_processors
        self.comp: List[List[float]] = []
        self.save: List[List[float]] = []
        self.load: List[List[float]] = []
        self.ops: List[List[int]] = []
        self.contrib: List[float] = []
        self.total = 0.0
        for step in schedule.supersteps:
            self.append_step(step)

    # ------------------------------------------------------------------
    def append_step(self, step: Superstep) -> None:
        """Append the cost rows of ``step`` (used during construction)."""
        dag, g = self.dag, self.g
        self.comp.append(
            [sum(dag.omega(v) for v in ps.computed_nodes()) for ps in step]
        )
        self.save.append(
            [g * sum(dag.mu(v) for v in ps.save_phase) for ps in step]
        )
        self.load.append(
            [g * sum(dag.mu(v) for v in ps.load_phase) for ps in step]
        )
        self.ops.append(
            [
                len(ps.compute_phase) + len(ps.save_phase)
                + len(ps.delete_phase) + len(ps.load_phase)
                for ps in step
            ]
        )
        self.contrib.append(0.0)
        self._refresh(len(self.contrib) - 1)

    def _refresh(self, s: int) -> None:
        """Recompute superstep ``s``'s contribution after a cell change."""
        if any(self.ops[s]):
            new = max(self.comp[s]) + max(self.save[s]) + max(self.load[s]) + self.L
        else:
            new = 0.0  # completely empty supersteps do not count
        self.total += new - self.contrib[s]
        self.contrib[s] = new

    # ------------------------------------------------------------------
    def update_cell(
        self,
        s: int,
        p: int,
        d_comp: float = 0.0,
        d_save: float = 0.0,
        d_load: float = 0.0,
        d_ops: int = 0,
    ) -> None:
        """Apply a delta to cell ``(s, p)`` and refresh the step contribution."""
        self.comp[s][p] += d_comp
        self.save[s][p] += d_save
        self.load[s][p] += d_load
        self.ops[s][p] += d_ops
        self._refresh(s)

    def insert_step(self, s: int) -> None:
        """Insert an (empty, zero-contribution) superstep at index ``s``."""
        P = self.num_processors
        self.comp.insert(s, [0.0] * P)
        self.save.insert(s, [0.0] * P)
        self.load.insert(s, [0.0] * P)
        self.ops.insert(s, [0] * P)
        self.contrib.insert(s, 0.0)

    def remove_step(self, s: int) -> None:
        """Remove superstep ``s`` (its contribution leaves the total)."""
        self.total -= self.contrib[s]
        del self.comp[s], self.save[s], self.load[s], self.ops[s], self.contrib[s]

    # ------------------------------------------------------------------
    def recomputed_total(self, schedule: MbspSchedule) -> float:
        """Reference total rebuilt from scratch (tests compare it to ``total``)."""
        return IncrementalCost(schedule).total


class ScheduleEditor:
    """Undoable primitive edits on a schedule, with cost kept in sync.

    All mutation during refinement goes through these primitives; each one
    pushes its inverse onto an undo stack, so a move that turns out to be
    non-improving or invalid is reverted exactly.  The editor also tracks the
    smallest superstep range affected by the pending move (``first_affected``
    / ``last_affected``) and whether the superstep *structure* changed
    (``structural``), which drives the localized revalidation.
    """

    def __init__(self, schedule: MbspSchedule) -> None:
        self.schedule = schedule
        self.cost = IncrementalCost(schedule)
        self._undo: List[Callable[[], None]] = []
        self.first_affected: Optional[int] = None
        self.last_affected: Optional[int] = None
        self.structural = False

    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start recording a new (tentative) move."""
        self._undo.clear()
        self.first_affected = None
        self.last_affected = None
        self.structural = False

    def commit(self) -> None:
        """Keep the pending move (drop its undo records)."""
        self._undo.clear()

    def rollback(self) -> None:
        """Revert every primitive of the pending move, newest first."""
        while self._undo:
            self._undo.pop()()

    def _touch(self, s: int) -> None:
        if self.first_affected is None or s < self.first_affected:
            self.first_affected = s
        if self.last_affected is None or s > self.last_affected:
            self.last_affected = s

    # ------------------------------------------------------------------
    # compute-phase primitives
    # ------------------------------------------------------------------
    def _compute_delta(self, op: Operation) -> float:
        return self.cost.dag.omega(op.node) if op.op_type is OpType.COMPUTE else 0.0

    def pop_compute_op(self, s: int, p: int, index: int) -> Operation:
        """Remove and return the ``index``-th compute-phase operation of ``(s, p)``."""
        op = self.schedule.supersteps[s][p].compute_phase.pop(index)
        self.cost.update_cell(s, p, d_comp=-self._compute_delta(op), d_ops=-1)
        self._touch(s)
        self._undo.append(lambda: self._raw_insert_compute(s, p, index, op))
        return op

    def insert_compute_op(self, s: int, p: int, index: int, op: Operation) -> None:
        """Insert ``op`` at ``index`` into the compute phase of ``(s, p)``."""
        self._raw_insert_compute(s, p, index, op)
        self._touch(s)
        self._undo.append(lambda: self._raw_pop_compute(s, p, index))

    def _raw_insert_compute(self, s: int, p: int, index: int, op: Operation) -> None:
        self.schedule.supersteps[s][p].compute_phase.insert(index, op)
        self.cost.update_cell(s, p, d_comp=self._compute_delta(op), d_ops=1)

    def _raw_pop_compute(self, s: int, p: int, index: int) -> None:
        op = self.schedule.supersteps[s][p].compute_phase.pop(index)
        self.cost.update_cell(s, p, d_comp=-self._compute_delta(op), d_ops=-1)

    # ------------------------------------------------------------------
    # save / delete / load phase primitives
    # ------------------------------------------------------------------
    def _phase_list(self, s: int, p: int, phase: str) -> List[NodeId]:
        ps = self.schedule.supersteps[s][p]
        if phase == "save":
            return ps.save_phase
        if phase == "delete":
            return ps.delete_phase
        if phase == "load":
            return ps.load_phase
        raise ValueError(f"unknown phase {phase!r}; expected one of {PHASES}")

    def _phase_delta(self, phase: str, node: NodeId) -> float:
        return 0.0 if phase == "delete" else self.cost.g * self.cost.dag.mu(node)

    def remove_phase_node(self, s: int, p: int, phase: str, index: int) -> NodeId:
        """Remove and return the ``index``-th node of a save/delete/load phase."""
        node = self._phase_list(s, p, phase).pop(index)
        delta = self._phase_delta(phase, node)
        self.cost.update_cell(
            s, p,
            d_save=-delta if phase == "save" else 0.0,
            d_load=-delta if phase == "load" else 0.0,
            d_ops=-1,
        )
        self._touch(s)
        self._undo.append(lambda: self._raw_insert_phase(s, p, phase, index, node))
        return node

    def insert_phase_node(self, s: int, p: int, phase: str, index: int, node: NodeId) -> None:
        """Insert ``node`` at ``index`` into a save/delete/load phase."""
        self._raw_insert_phase(s, p, phase, index, node)
        self._touch(s)
        self._undo.append(lambda: self._raw_pop_phase(s, p, phase, index))

    def _raw_insert_phase(self, s: int, p: int, phase: str, index: int, node: NodeId) -> None:
        self._phase_list(s, p, phase).insert(index, node)
        delta = self._phase_delta(phase, node)
        self.cost.update_cell(
            s, p,
            d_save=delta if phase == "save" else 0.0,
            d_load=delta if phase == "load" else 0.0,
            d_ops=1,
        )

    def _raw_pop_phase(self, s: int, p: int, phase: str, index: int) -> None:
        node = self._phase_list(s, p, phase).pop(index)
        delta = self._phase_delta(phase, node)
        self.cost.update_cell(
            s, p,
            d_save=-delta if phase == "save" else 0.0,
            d_load=-delta if phase == "load" else 0.0,
            d_ops=-1,
        )

    # ------------------------------------------------------------------
    # structural primitives
    # ------------------------------------------------------------------
    def insert_empty_step(self, s: int) -> None:
        """Insert a fresh empty superstep at index ``s``."""
        step = Superstep(self.schedule.instance.num_processors)
        self.schedule.supersteps.insert(s, step)
        self.cost.insert_step(s)
        self.structural = True
        self._touch(s)
        self._undo.append(lambda: self._raw_remove_step(s))

    def remove_empty_step(self, s: int) -> None:
        """Remove superstep ``s``; it must be completely empty."""
        step = self.schedule.supersteps[s]
        if not step.is_empty():
            raise ValueError(f"superstep {s} is not empty")
        self._raw_remove_step(s)
        self.structural = True
        self._touch(max(0, s - 1))
        self._undo.append(lambda: self._raw_insert_step(s, step))

    def _raw_remove_step(self, s: int) -> None:
        del self.schedule.supersteps[s]
        self.cost.remove_step(s)

    def _raw_insert_step(self, s: int, step: Superstep) -> None:
        # only reachable as the undo of remove_empty_step, which guarantees
        # the step is empty — a zero cost row is therefore exact
        self.schedule.supersteps.insert(s, step)
        self.cost.insert_step(s)
