"""Local-search schedule refinement (``repro.refine``).

A cheap improvement layer between the fast two-stage heuristics and the
expensive exact ILP schedulers: hill climbing / simulated annealing over a
pluggable neighborhood of schedule moves, with incremental cost deltas and
localized validity replay.  See :class:`Refiner` / :func:`refine_schedule`
for the API and :mod:`repro.refine.moves` for the neighborhood.
"""

from repro.refine.editing import IncrementalCost, ScheduleEditor
from repro.refine.engine import (
    RefineConfig,
    RefineResult,
    Refiner,
    TraceEntry,
    refine_schedule,
)
from repro.refine.moves import MOVE_FAMILIES, Move, generate_moves
from repro.refine.validation import IncrementalValidator

__all__ = [
    "IncrementalCost",
    "ScheduleEditor",
    "RefineConfig",
    "RefineResult",
    "Refiner",
    "TraceEntry",
    "refine_schedule",
    "MOVE_FAMILIES",
    "Move",
    "generate_moves",
    "IncrementalValidator",
]
