"""The refinement move neighborhood.

Every move is a small, undoable schedule edit expressed through the
primitives of :class:`~repro.refine.editing.ScheduleEditor`.  Moves are
*optimistic*: ``apply`` performs cheap structural checks only (index bounds,
trivially-doomed patterns) and the engine gates acceptance on the incremental
cost delta first and on a localized pebbling revalidation second — a move
that would break a model rule is simply rolled back.  This keeps every move
class tiny while the validator remains the single source of truth for the
model semantics.

Move families (selectable through ``RefineConfig.moves``):

``merge``
    Fold superstep ``s+1`` into ``s`` (phase-wise concatenation), saving one
    ``L`` plus any overlap of the per-processor maxima.
``reassign``
    Move one COMPUTE operation (and its creation save / in-step delete) to
    another processor of the same superstep, balancing the compute maxima.
``split``
    Move the tail of one processor's compute phase into a freshly inserted
    superstep — always a cost increase (``+L``), useful only as a simulated
    -annealing escape move (the hill-climbing engine skips the family).
``reorder``
    Adjacent transposition inside one compute phase; cost-neutral
    diversification that can unlock merges under simulated annealing (the
    hill-climbing engine, which only accepts strict improvements, skips it).
``load``
    Relocate a LOAD to an earlier superstep (balancing the load maxima and
    emptying load-only steps), or drop a redundant LOAD entirely.
``save``
    Relocate a SAVE to a different superstep, or drop a save that nothing
    ever reads back (the validator keeps sink/terminal saves alive).
``recompute``
    Replace a LOAD with a COMPUTE of the same node (recomputation), trading
    ``g * mu(v)`` of I/O against ``omega(v)`` of work — the classic trick the
    paper's holistic ILP discovers, here available to local search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.model.pebbling import OpType, compute_op
from repro.model.schedule import MbspSchedule
from repro.refine.editing import ScheduleEditor

#: All known move family names (the default configuration enables them all).
MOVE_FAMILIES = ("merge", "reassign", "split", "reorder", "load", "save", "recompute")


@dataclass(frozen=True)
class Move:
    """Base class: one candidate edit of the schedule."""

    name = "move"

    def apply(self, editor: ScheduleEditor) -> bool:
        """Perform the edit; return False when structurally inapplicable.

        May leave partial edits behind when returning False — the engine
        always wraps ``apply`` in ``begin``/``rollback``.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class MergeSupersteps(Move):
    """Fold superstep ``s + 1`` into superstep ``s``."""

    s: int

    name = "merge"

    def apply(self, editor: ScheduleEditor) -> bool:
        steps = editor.schedule.supersteps
        s = self.s
        if not 0 <= s < len(steps) - 1:
            return False
        src, dst = steps[s + 1], steps[s]
        for p in range(dst.num_processors):
            # a processor that loads in ``s`` and computes in ``s + 1`` would
            # end up computing *before* those loads in the merged step; that
            # is almost never valid, so skip the doomed validation replay
            if dst[p].load_phase and src[p].compute_phase:
                return False
        for p in range(dst.num_processors):
            while src[p].compute_phase:
                op = editor.pop_compute_op(s + 1, p, 0)
                editor.insert_compute_op(s, p, len(dst[p].compute_phase), op)
            for phase in ("save", "delete", "load"):
                while editor._phase_list(s + 1, p, phase):
                    node = editor.remove_phase_node(s + 1, p, phase, 0)
                    editor.insert_phase_node(
                        s, p, phase, len(editor._phase_list(s, p, phase)), node
                    )
        editor.remove_empty_step(s + 1)
        return True


@dataclass(frozen=True)
class ReassignCompute(Move):
    """Move the ``index``-th compute op of ``(s, p)`` to processor ``q``."""

    s: int
    p: int
    q: int
    index: int

    name = "reassign"

    def apply(self, editor: ScheduleEditor) -> bool:
        steps = editor.schedule.supersteps
        s, p, q = self.s, self.p, self.q
        if not 0 <= s < len(steps) or p == q:
            return False
        ps = steps[s][p]
        if not 0 <= self.index < len(ps.compute_phase):
            return False
        op = ps.compute_phase[self.index]
        if op.op_type is not OpType.COMPUTE:
            return False
        node = op.node
        editor.pop_compute_op(s, p, self.index)
        editor.insert_compute_op(s, q, len(steps[s][q].compute_phase), op)
        # the creation save and any same-step eviction follow the value
        if node in steps[s][p].save_phase:
            idx = steps[s][p].save_phase.index(node)
            editor.remove_phase_node(s, p, "save", idx)
            editor.insert_phase_node(s, q, "save", len(steps[s][q].save_phase), node)
        if node in steps[s][p].delete_phase:
            idx = steps[s][p].delete_phase.index(node)
            editor.remove_phase_node(s, p, "delete", idx)
            editor.insert_phase_node(s, q, "delete", len(steps[s][q].delete_phase), node)
        return True


@dataclass(frozen=True)
class SplitSuperstep(Move):
    """Move ``(s, p)``'s compute tail (from ``k``) into a new next superstep."""

    s: int
    p: int
    k: int

    name = "split"

    def apply(self, editor: ScheduleEditor) -> bool:
        steps = editor.schedule.supersteps
        s, p, k = self.s, self.p, self.k
        if not 0 <= s < len(steps):
            return False
        ps = steps[s][p]
        if not 0 < k < len(ps.compute_phase):
            return False
        editor.insert_empty_step(s + 1)
        moved_nodes = []
        while len(steps[s][p].compute_phase) > k:
            op = editor.pop_compute_op(s, p, k)
            editor.insert_compute_op(
                s + 1, p, len(steps[s + 1][p].compute_phase), op
            )
            if op.op_type is OpType.COMPUTE:
                moved_nodes.append(op.node)
        # creation saves of the moved tail move with their compute ops
        for node in moved_nodes:
            if node in steps[s][p].save_phase:
                idx = steps[s][p].save_phase.index(node)
                editor.remove_phase_node(s, p, "save", idx)
                editor.insert_phase_node(
                    s + 1, p, "save", len(steps[s + 1][p].save_phase), node
                )
        return True


@dataclass(frozen=True)
class ReorderCompute(Move):
    """Swap adjacent compute-phase operations ``index`` and ``index + 1``."""

    s: int
    p: int
    index: int

    name = "reorder"

    def apply(self, editor: ScheduleEditor) -> bool:
        steps = editor.schedule.supersteps
        s, p = self.s, self.p
        if not 0 <= s < len(steps):
            return False
        ps = steps[s][p]
        if not 0 <= self.index < len(ps.compute_phase) - 1:
            return False
        op = editor.pop_compute_op(s, p, self.index)
        editor.insert_compute_op(s, p, self.index + 1, op)
        return True


@dataclass(frozen=True)
class MoveLoad(Move):
    """Relocate the ``index``-th LOAD of ``(s, p)`` to superstep ``t < s``."""

    s: int
    p: int
    index: int
    t: int

    name = "load"

    def apply(self, editor: ScheduleEditor) -> bool:
        steps = editor.schedule.supersteps
        s, p, t = self.s, self.p, self.t
        if not (0 <= t < s < len(steps)):
            return False
        ps = steps[s][p]
        if not 0 <= self.index < len(ps.load_phase):
            return False
        node = editor.remove_phase_node(s, p, "load", self.index)
        editor.insert_phase_node(t, p, "load", len(steps[t][p].load_phase), node)
        return True


@dataclass(frozen=True)
class RemoveLoad(Move):
    """Drop the ``index``-th LOAD of ``(s, p)`` (redundant loads only survive)."""

    s: int
    p: int
    index: int

    name = "load"

    def apply(self, editor: ScheduleEditor) -> bool:
        steps = editor.schedule.supersteps
        if not 0 <= self.s < len(steps):
            return False
        if not 0 <= self.index < len(steps[self.s][self.p].load_phase):
            return False
        editor.remove_phase_node(self.s, self.p, "load", self.index)
        return True


@dataclass(frozen=True)
class MoveSave(Move):
    """Relocate the ``index``-th SAVE of ``(s, p)`` to superstep ``t``."""

    s: int
    p: int
    index: int
    t: int

    name = "save"

    def apply(self, editor: ScheduleEditor) -> bool:
        steps = editor.schedule.supersteps
        s, p, t = self.s, self.p, self.t
        if t == s or not (0 <= s < len(steps) and 0 <= t < len(steps)):
            return False
        ps = steps[s][p]
        if not 0 <= self.index < len(ps.save_phase):
            return False
        node = editor.remove_phase_node(s, p, "save", self.index)
        editor.insert_phase_node(t, p, "save", len(steps[t][p].save_phase), node)
        return True


@dataclass(frozen=True)
class RemoveSave(Move):
    """Drop the ``index``-th SAVE of ``(s, p)`` (dead writes only survive)."""

    s: int
    p: int
    index: int

    name = "save"

    def apply(self, editor: ScheduleEditor) -> bool:
        steps = editor.schedule.supersteps
        if not 0 <= self.s < len(steps):
            return False
        if not 0 <= self.index < len(steps[self.s][self.p].save_phase):
            return False
        editor.remove_phase_node(self.s, self.p, "save", self.index)
        return True


@dataclass(frozen=True)
class RecomputeInsteadOfLoad(Move):
    """Replace the ``index``-th LOAD of ``(s, p)`` with a COMPUTE of the node.

    ``where`` selects the insertion point: ``"here"`` appends the compute to
    the *same* superstep's compute phase (the value becomes available even
    earlier than the load made it), ``"next"`` prepends it to the following
    superstep's compute phase (the position the load was feeding).
    """

    s: int
    p: int
    index: int
    where: str = "here"

    name = "recompute"

    def apply(self, editor: ScheduleEditor) -> bool:
        steps = editor.schedule.supersteps
        s, p = self.s, self.p
        if not 0 <= s < len(steps):
            return False
        ps = steps[s][p]
        if not 0 <= self.index < len(ps.load_phase):
            return False
        node = ps.load_phase[self.index]
        if editor.cost.dag.is_source(node):
            return False  # source nodes are never computed
        editor.remove_phase_node(s, p, "load", self.index)
        if self.where == "here":
            editor.insert_compute_op(
                s, p, len(steps[s][p].compute_phase), compute_op(node)
            )
        else:
            if s + 1 >= len(steps):
                return False
            editor.insert_compute_op(s + 1, p, 0, compute_op(node))
        return True


# ----------------------------------------------------------------------
# neighborhood generation
# ----------------------------------------------------------------------
def generate_moves(
    schedule: MbspSchedule, families: Sequence[str] = MOVE_FAMILIES
) -> List[Move]:
    """All candidate moves of the enabled families for the current schedule.

    The list is generated in a deterministic structural order; the engine
    shuffles it with its seeded RNG.  Indices refer to the schedule *now* —
    after any accepted move the engine regenerates stale candidates lazily
    (every move re-checks its bounds in ``apply``).
    """
    enabled = set(families)
    unknown = enabled - set(MOVE_FAMILIES)
    if unknown:
        raise ValueError(
            f"unknown move families {sorted(unknown)!r}; available: {MOVE_FAMILIES}"
        )
    moves: List[Move] = []
    steps = schedule.supersteps
    P = schedule.instance.num_processors
    for s, step in enumerate(steps):
        if "merge" in enabled and s + 1 < len(steps):
            moves.append(MergeSupersteps(s))
        for p in range(P):
            ps = step[p]
            ncomp = len(ps.compute_phase)
            if "reassign" in enabled:
                for index, op in enumerate(ps.compute_phase):
                    if op.op_type is OpType.COMPUTE:
                        for q in range(P):
                            if q != p:
                                moves.append(ReassignCompute(s, p, q, index))
            if "split" in enabled and ncomp >= 2:
                moves.append(SplitSuperstep(s, p, ncomp // 2))
            if "reorder" in enabled:
                for index in range(ncomp - 1):
                    moves.append(ReorderCompute(s, p, index))
            if "load" in enabled:
                for index in range(len(ps.load_phase)):
                    moves.append(RemoveLoad(s, p, index))
                    for t in range(s):
                        moves.append(MoveLoad(s, p, index, t))
            if "save" in enabled:
                for index in range(len(ps.save_phase)):
                    moves.append(RemoveSave(s, p, index))
                    for t in range(len(steps)):
                        if t != s:
                            moves.append(MoveSave(s, p, index, t))
            if "recompute" in enabled:
                for index in range(len(ps.load_phase)):
                    moves.append(RecomputeInsteadOfLoad(s, p, index, "here"))
                    moves.append(RecomputeInsteadOfLoad(s, p, index, "next"))
    return moves
