"""Localized schedule revalidation for the refinement engine.

A refinement move edits a handful of supersteps; replaying the whole
schedule through the pebbling validator after every accepted move would cost
``O(schedule)`` even for a purely local change.  :class:`IncrementalValidator`
keeps a pebbling-state snapshot *before* every superstep, so checking a move
only requires:

1. cloning the snapshot before the first affected superstep,
2. replaying forward (via :func:`repro.model.validation.replay_superstep`,
   the exact primitive of the full validator — the rules enforced are
   identical), and
3. stopping early once the replay reaches an unedited superstep whose
   pebble configuration matches the recorded snapshot: from there on the
   old replay is guaranteed to repeat verbatim.

On success the snapshots are updated in place; on failure they are left
untouched, matching the editor's rollback of the schedule itself.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import InvalidScheduleError
from repro.model.pebbling import PebblingState
from repro.model.schedule import MbspSchedule
from repro.model.validation import replay_superstep


class IncrementalValidator:
    """Snapshot-based revalidation of a schedule under local edits.

    Parameters
    ----------
    schedule:
        The (mutable) schedule being refined.  Construction replays it once
        and raises :class:`~repro.exceptions.InvalidScheduleError` if the
        input is not valid — refinement only ever starts from valid
        schedules.
    """

    def __init__(self, schedule: MbspSchedule) -> None:
        self.schedule = schedule
        instance = schedule.instance
        state = PebblingState(instance.dag, instance.num_processors, instance.cache_size)
        # snapshots[i] is the configuration *before* superstep i;
        # snapshots[num_supersteps] is the final configuration.
        self.snapshots: List[PebblingState] = [state.copy()]
        for s, step in enumerate(schedule.supersteps):
            replay_superstep(state, step, s)
            self.snapshots.append(state.copy())
        if state.missing_sinks():
            raise InvalidScheduleError(
                f"refinement input: sink nodes {state.missing_sinks()!r} never "
                f"saved to slow memory"
            )

    # ------------------------------------------------------------------
    def revalidate(
        self,
        first: Optional[int],
        last: Optional[int] = None,
        structural: bool = False,
    ) -> bool:
        """Check validity after an edit touching supersteps ``[first, last]``.

        Returns ``True`` and updates the snapshots when the edited schedule
        is valid; returns ``False`` (snapshots untouched) otherwise, in which
        case the caller must roll the edit back.  ``structural=True`` means
        supersteps were inserted/removed, which disables the matching-suffix
        early exit (step indices shifted).
        """
        steps = self.schedule.supersteps
        n = len(steps)
        if first is None:
            return True  # nothing was edited
        first = max(0, min(first, len(self.snapshots) - 1))
        state = self.snapshots[first].copy()
        new_snapshots: List[PebblingState] = []
        try:
            for s in range(first, n):
                if (
                    not structural
                    and last is not None
                    and s > last
                    and s < len(self.snapshots) - 1
                    and state.same_configuration(self.snapshots[s])
                ):
                    # unedited suffix with an identical entry configuration:
                    # the remaining replay repeats the recorded one verbatim
                    self.snapshots[first:s] = new_snapshots
                    return True
                new_snapshots.append(state.copy())
                replay_superstep(state, steps[s], s)
        except InvalidScheduleError:
            return False
        if state.missing_sinks():
            return False
        self.snapshots[first:] = new_snapshots + [state.copy()]
        return True
