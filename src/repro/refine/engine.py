"""The schedule refinement engine: seeded local search over MBSP schedules.

:class:`Refiner` post-optimizes any valid :class:`~repro.model.schedule.
MbspSchedule` by hill climbing (or simulated annealing) over the move
neighborhood of :mod:`repro.refine.moves`.  The engine's contract:

* **never worse** — the returned schedule's cost is at most the input's
  (simulated annealing tracks the best-seen snapshot);
* **always valid** — every accepted move passes a pebbling revalidation
  (:class:`~repro.refine.validation.IncrementalValidator`), so the result
  satisfies :func:`repro.model.validation.validate_schedule` whenever the
  input does;
* **deterministic** — for a fixed seed and budget the proposal order, the
  accepted moves and the final schedule are reproducible (no wall-clock
  dependence unless ``max_time`` is explicitly set).

Costs are evaluated **incrementally**: a proposal costs ``O(P)`` per edited
superstep (see :mod:`repro.refine.editing`), a full
:func:`~repro.model.cost.schedule_cost` is never recomputed per move.  The
default objective is the synchronous cost model; with ``synchronous=False``
the sync state still screens proposals cheaply, but acceptance is gated on
the exact asynchronous makespan — strict improvement under hill climbing, a
Metropolis test on the makespan delta under annealing.  (The makespan is
not superstep-separable, so it is evaluated exactly, once per candidate
that survives the screen — the same complexity class as the validity
replay it accompanies.)
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.model.cost import asynchronous_cost, synchronous_cost
from repro.model.schedule import MbspSchedule
from repro.refine.editing import ScheduleEditor
from repro.refine.moves import MOVE_FAMILIES, generate_moves
from repro.refine.validation import IncrementalValidator

_EPS = 1e-9


@dataclass
class RefineConfig:
    """Configuration of the refinement engine.

    Attributes
    ----------
    enabled:
        Consumed by the experiment harness (``ExperimentConfig.refine``):
        whether the per-instance runners post-optimize their schedules.  The
        explicit ``"<member>+refine"`` portfolio members refine regardless.
    budget:
        Maximum number of move *proposals* examined (applied tentatively and
        evaluated); the deterministic resource knob.
    seed:
        Seed of the proposal-order RNG (and the annealing acceptance RNG).
    strategy:
        ``"hill"`` — first-improvement hill climbing to a local optimum;
        ``"anneal"`` — simulated annealing with geometric cooling, returning
        the best-seen schedule.
    initial_temperature / cooling:
        Annealing schedule: ``T_k = initial_temperature * cooling ** k``.
    moves:
        Enabled move families (see :data:`repro.refine.moves.MOVE_FAMILIES`).
    max_time:
        Optional wall-clock cap in seconds.  **Breaks determinism** — leave
        ``None`` (the default) anywhere results feed caches or comparisons.
    """

    enabled: bool = False
    budget: int = 3000
    seed: int = 0
    strategy: str = "hill"
    initial_temperature: float = 20.0
    cooling: float = 0.995
    moves: Tuple[str, ...] = MOVE_FAMILIES
    max_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.strategy not in ("hill", "anneal"):
            raise ValueError(
                f"unknown refinement strategy {self.strategy!r}; "
                f"expected 'hill' or 'anneal'"
            )
        if self.budget < 0:
            raise ValueError("refinement budget must be non-negative")


@dataclass(frozen=True)
class TraceEntry:
    """One accepted move: its proposal index, family, delta and new cost."""

    proposal: int
    move: str
    delta: float
    cost: float


@dataclass
class RefineResult:
    """Outcome of one :meth:`Refiner.refine` call."""

    schedule: MbspSchedule
    initial_cost: float
    final_cost: float
    trace: List[TraceEntry] = field(default_factory=list)
    proposals: int = 0
    accepted: int = 0
    invalid: int = 0       # cost-accepted candidates rejected by the validator
    rounds: int = 0
    wall_time: float = 0.0

    @property
    def improvement(self) -> float:
        """Absolute cost reduction (non-negative by contract)."""
        return self.initial_cost - self.final_cost

    @property
    def improvement_ratio(self) -> float:
        """Final cost over initial cost (``<= 1``)."""
        if self.initial_cost == 0:
            return 1.0
        return self.final_cost / self.initial_cost

    def telemetry(self, unrefined_cost: float) -> dict:
        """The standard ``extra_costs`` record of one refinement pass.

        Shared by every experiment runner that refines a schedule, so the
        recorded keys cannot drift between them.
        """
        return {
            "unrefined_cost": float(unrefined_cost),
            "refine_accepted": float(self.accepted),
            "refine_proposals": float(self.proposals),
        }

    def summary(self) -> str:
        return (
            f"refine: {self.initial_cost:g} -> {self.final_cost:g} "
            f"({self.improvement_ratio:.3f}x) in {self.accepted} accepted / "
            f"{self.proposals} proposed moves ({self.invalid} invalid), "
            f"{self.rounds} rounds, {self.wall_time:.2f}s"
        )


class Refiner:
    """Local-search post-optimizer for MBSP schedules."""

    def __init__(self, config: Optional[RefineConfig] = None) -> None:
        self.config = config or RefineConfig()

    # ------------------------------------------------------------------
    def refine(
        self,
        schedule: MbspSchedule,
        instance=None,
        budget: Optional[int] = None,
        synchronous: bool = True,
    ) -> RefineResult:
        """Refine ``schedule`` (left unmodified) within the proposal budget.

        ``instance`` defaults to the schedule's own instance; passing one
        re-targets the copy (the DAG and processor count must match).
        Raises :class:`~repro.exceptions.InvalidScheduleError` when the
        input schedule is not valid.
        """
        from repro import obs

        if not obs.tracing_enabled():
            return self._refine_impl(schedule, instance, budget, synchronous)
        config = self.config
        with obs.trace_span(
            "refine",
            category="refine",
            strategy=config.strategy,
            seed=config.seed,
            budget=config.budget if budget is None else int(budget),
        ) as span:
            result = self._refine_impl(schedule, instance, budget, synchronous)
            span.set(
                proposals=result.proposals,
                accepted=result.accepted,
                invalid=result.invalid,
                rounds=result.rounds,
                cost_in=result.initial_cost,
                cost_out=result.final_cost,
            )
            return result

    def _refine_impl(
        self,
        schedule: MbspSchedule,
        instance=None,
        budget: Optional[int] = None,
        synchronous: bool = True,
    ) -> RefineResult:
        config = self.config
        start = time.perf_counter()
        if instance is None or instance is schedule.instance:
            work = schedule.copy()
        else:
            work = MbspSchedule(instance, [s.copy() for s in schedule.supersteps])
        budget = config.budget if budget is None else max(0, int(budget))

        editor = ScheduleEditor(work)
        validator = IncrementalValidator(work)
        initial_sync = editor.cost.total
        initial_cost = initial_sync if synchronous else asynchronous_cost(work)

        result = RefineResult(
            schedule=work, initial_cost=initial_cost, final_cost=initial_cost
        )
        if not work.supersteps or budget == 0:
            result.schedule = work.drop_empty_supersteps()
            result.wall_time = time.perf_counter() - start
            return result

        rng = random.Random(config.seed)
        anneal = config.strategy == "anneal"
        families = config.moves
        if not anneal:
            # splits always cost at least +L and reorders are cost-neutral:
            # under strict-improvement hill climbing neither can ever be
            # accepted, so proposing them would only burn budget (they stay
            # in the annealing neighborhood, where uphill/neutral moves are
            # the point)
            families = tuple(f for f in families if f not in ("split", "reorder"))
        deadline = None if config.max_time is None else start + config.max_time

        current_cost = initial_cost     # objective actually reported
        best_cost = initial_cost
        # annealing walks uphill, so the best-seen schedule must be kept
        # (starting with the input itself); hill climbing is monotone
        best_snapshot: Optional[MbspSchedule] = work.copy() if anneal else None

        def metropolis(delta: float) -> bool:
            """Annealing acceptance: downhill always, uphill by temperature."""
            if delta <= _EPS:
                return True
            temperature = max(
                config.initial_temperature * (config.cooling ** result.proposals),
                1e-9,
            )
            return rng.random() < math.exp(-delta / temperature)

        out_of_budget = False
        while not out_of_budget:
            result.rounds += 1
            moves = generate_moves(work, families)
            rng.shuffle(moves)
            accepted_this_round = 0
            for move in moves:
                if result.proposals >= budget or (
                    deadline is not None and time.perf_counter() > deadline
                ):
                    out_of_budget = True
                    break
                result.proposals += 1
                sync_before = editor.cost.total
                editor.begin()
                if not move.apply(editor):
                    editor.rollback()
                    continue
                sync_delta = editor.cost.total - sync_before
                if anneal:
                    if not metropolis(sync_delta):
                        editor.rollback()
                        continue
                elif sync_delta >= (-_EPS if synchronous else _EPS):
                    # hill climbing accepts strict improvements only; under
                    # the asynchronous objective the sync delta is just a
                    # cheap screen, so sync-*neutral* moves (e.g. a load
                    # moved into slack) pass through to the makespan gate
                    editor.rollback()
                    continue
                if not synchronous:
                    # the makespan is not superstep-separable: evaluate it
                    # exactly on the mutated schedule (the cheap sync delta
                    # above only screened the proposal) and gate acceptance
                    # on it — strict improvement under hill climbing, a
                    # second Metropolis test on the makespan delta under
                    # annealing
                    new_cost = asynchronous_cost(work)
                    if anneal:
                        if not metropolis(new_cost - current_cost):
                            editor.rollback()
                            continue
                    elif new_cost >= current_cost - _EPS:
                        editor.rollback()
                        continue
                else:
                    new_cost = editor.cost.total
                if not validator.revalidate(
                    editor.first_affected, editor.last_affected, editor.structural
                ):
                    result.invalid += 1
                    editor.rollback()
                    continue
                editor.commit()
                # the trace reports deltas in the *reported* objective, so
                # the async trace shows makespan deltas, not the sync screen
                objective_delta = new_cost - current_cost
                current_cost = new_cost
                result.accepted += 1
                accepted_this_round += 1
                result.trace.append(
                    TraceEntry(
                        proposal=result.proposals,
                        move=move.name,
                        delta=objective_delta,
                        cost=current_cost,
                    )
                )
                if current_cost < best_cost - _EPS:
                    best_cost = current_cost
                    best_snapshot = work.copy() if anneal else None
            if not accepted_this_round and not out_of_budget:
                break  # a full clean scan found nothing: local optimum
        # annealing may end uphill: fall back to the best-seen snapshot
        if anneal and best_snapshot is not None and current_cost > best_cost + _EPS:
            work = best_snapshot
            current_cost = best_cost
        final = work.drop_empty_supersteps()
        result.schedule = final
        result.final_cost = min(current_cost, best_cost)
        if result.final_cost > initial_cost:
            # belt and braces: the contract is "never worse"
            result.schedule = schedule.copy().drop_empty_supersteps()
            result.final_cost = initial_cost
        result.wall_time = time.perf_counter() - start
        return result


def refine_schedule(
    schedule: MbspSchedule,
    budget: Optional[int] = None,
    seed: int = 0,
    strategy: str = "hill",
    synchronous: bool = True,
    config: Optional[RefineConfig] = None,
) -> RefineResult:
    """Convenience wrapper: refine with an ad-hoc configuration."""
    if config is None:
        config = RefineConfig(seed=seed, strategy=strategy)
    return Refiner(config).refine(schedule, budget=budget, synchronous=synchronous)
