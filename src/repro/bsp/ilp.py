"""ILP-based BSP scheduler (the paper's "stronger baseline" first stage).

The BSP scheduling problem itself (ignoring memory constraints) is formulated
as an ILP, similarly to [36]: binary variables assign every computable node to
a (processor, superstep) pair, the work cost of a superstep is the maximum
processor work, and communicated values are charged ``g * mu`` whenever a
value is needed on a processor that did not compute it.  The number of
supersteps is fixed up front (taken from a greedy schedule plus slack).

The memory bound ``r`` plays no role here — that is exactly why the paper uses
this scheduler only as the first stage of a *two-stage* baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.exceptions import ScheduleError, SolverError
from repro.ilp import IlpModel, SolverOptions, lin_sum, solve
from repro.bsp.greedy import greedy_bsp_schedule
from repro.bsp.schedule import BspSchedule


@dataclass
class BspIlpConfig:
    """Configuration of the ILP-based BSP scheduler.

    Attributes
    ----------
    max_supersteps:
        Number of supersteps available to the ILP; ``None`` derives it from a
        greedy schedule (its superstep count plus one).
    solver_options:
        Time limit / gap options passed to the ILP backend.
    backend:
        Any registered ILP backend name — ``"scipy"`` (HiGHS), ``"bnb"``
        (pure-Python branch and bound) or ``"auto"``; ``None`` selects the
        process default (see :mod:`repro.ilp.backends`).
    """

    max_supersteps: Optional[int] = None
    solver_options: SolverOptions = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.solver_options is None:
            self.solver_options = SolverOptions(time_limit=20.0)


class IlpBspScheduler:
    """Formulate and solve BSP scheduling as an ILP; fall back to greedy."""

    def __init__(self, config: Optional[BspIlpConfig] = None) -> None:
        self.config = config or BspIlpConfig()

    # ------------------------------------------------------------------
    def schedule(
        self,
        dag: ComputationalDag,
        num_processors: int,
        g: float = 1.0,
        L: float = 0.0,
    ) -> BspSchedule:
        """Return the best BSP schedule found (never worse than the greedy one)."""
        greedy = greedy_bsp_schedule(dag, num_processors, g=g)
        computable = [v for v in dag.nodes if not dag.is_source(v)]
        if not computable:
            return greedy
        num_supersteps = self.config.max_supersteps or (greedy.num_supersteps + 1)
        num_supersteps = max(num_supersteps, 1)

        model, x_vars = self._build_model(dag, num_processors, num_supersteps, g, L)
        solution = solve(model, self.config.solver_options, backend=self.config.backend)
        if not solution.has_solution:
            return greedy
        ilp_schedule = self._extract(dag, num_processors, num_supersteps, x_vars, solution)
        if ilp_schedule is None:
            return greedy
        return ilp_schedule

    # ------------------------------------------------------------------
    def _build_model(
        self,
        dag: ComputationalDag,
        P: int,
        S: int,
        g: float,
        L: float,
    ) -> Tuple[IlpModel, Dict[Tuple[NodeId, int, int], object]]:
        model = IlpModel(f"bsp_ilp_{dag.name}")
        computable = [v for v in dag.nodes if not dag.is_source(v)]

        # x[v, p, s] = 1 iff node v is computed on processor p in superstep s
        x = {}
        for v in computable:
            for p in range(P):
                for s in range(S):
                    x[v, p, s] = model.add_binary(f"x_{v}_{p}_{s}")
        # every node computed exactly once
        for v in computable:
            model.add_constraint(
                lin_sum(x[v, p, s] for p in range(P) for s in range(S)) == 1
            )
        # precedence: v in (p, s) requires u earlier, or same (p, s)
        for u, v in dag.edges():
            if dag.is_source(u):
                continue
            for p in range(P):
                for s in range(S):
                    earlier = lin_sum(
                        x[u, q, t] for q in range(P) for t in range(s)
                    )
                    model.add_constraint(x[v, p, s] <= earlier + x[u, p, s])
        # work cost per superstep
        work = [model.add_continuous(f"work_{s}") for s in range(S)]
        for s in range(S):
            for p in range(P):
                model.add_constraint(
                    work[s]
                    >= lin_sum(dag.omega(v) * x[v, p, s] for v in computable)
                )
        # communicated values: value u needed on processor p that did not
        # compute it (covers both non-source values and source loads)
        comm_terms = []
        for u in dag.nodes:
            children = [v for v in dag.children(u) if not dag.is_source(v)]
            if not children:
                continue
            for p in range(P):
                need = model.add_binary(f"need_{u}_{p}")
                for v in children:
                    for s in range(S):
                        if dag.is_source(u):
                            model.add_constraint(need >= x[v, p, s])
                        else:
                            model.add_constraint(
                                need
                                >= x[v, p, s]
                                - lin_sum(x[u, p, t] for t in range(S))
                            )
                comm_terms.append(dag.mu(u) * need)
        # superstep usage (to charge L per used superstep and compact solutions)
        used = [model.add_binary(f"used_{s}") for s in range(S)]
        n = len(computable)
        for s in range(S):
            model.add_constraint(
                lin_sum(x[v, p, s] for v in computable for p in range(P))
                <= n * used[s]
            )
        objective = lin_sum(work) + g * lin_sum(comm_terms) + L * lin_sum(used)
        model.minimize(objective)
        return model, x

    # ------------------------------------------------------------------
    def _extract(
        self,
        dag: ComputationalDag,
        P: int,
        S: int,
        x_vars,
        solution,
    ) -> Optional[BspSchedule]:
        schedule = BspSchedule(dag, P)
        topo_position = {v: i for i, v in enumerate(dag.topological_order())}
        placements: List[Tuple[int, int, NodeId]] = []
        for v in dag.nodes:
            if dag.is_source(v):
                continue
            chosen = None
            for p in range(P):
                for s in range(S):
                    if solution.value(x_vars[v, p, s]) > 0.5:
                        chosen = (s, p)
                        break
                if chosen:
                    break
            if chosen is None:
                return None
            placements.append((chosen[0], chosen[1], v))
        # assign in (superstep, topological) order so intra-cell orders respect
        # the precedence constraints
        placements.sort(key=lambda item: (item[0], topo_position[item[2]]))
        for s, p, v in placements:
            schedule.assign(v, p, s)
        try:
            schedule.validate()
        except ScheduleError:
            return None
        return schedule.compact_supersteps()


def ilp_bsp_schedule(
    dag: ComputationalDag,
    num_processors: int,
    g: float = 1.0,
    L: float = 0.0,
    config: Optional[BspIlpConfig] = None,
) -> BspSchedule:
    """Convenience wrapper around :class:`IlpBspScheduler`."""
    return IlpBspScheduler(config).schedule(dag, num_processors, g=g, L=L)
