"""Earliest-Task-First (ETF) list scheduler.

A classic communication-aware list scheduler: ready tasks are repeatedly
placed on the processor where they can *start earliest*, taking into account
a per-value communication delay ``g * mu`` whenever an input was produced on
a different processor.  ETF serves as an additional memory-oblivious first
stage for the two-stage pipeline (alongside BSPg and Cilk) and as a reference
point in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.bsp.schedule import BspSchedule
from repro.bsp.superstepify import superstepify


@dataclass
class EtfPlacement:
    """Result of the ETF simulation: placement, order, and makespan."""

    placement: Dict[NodeId, int]
    order: List[NodeId]
    start_time: Dict[NodeId, float]
    finish_time: Dict[NodeId, float]
    makespan: float


def etf_placement(
    dag: ComputationalDag,
    num_processors: int,
    g: float = 1.0,
) -> EtfPlacement:
    """Compute an ETF placement of the non-source nodes of ``dag``."""
    if num_processors < 1:
        raise ValueError("num_processors must be at least 1")
    computable = [v for v in dag.nodes if not dag.is_source(v)]
    pending = {
        v: sum(1 for u in dag.parents(v) if not dag.is_source(u)) for v in computable
    }
    ready = {v for v in computable if pending[v] == 0}

    proc_free = [0.0] * num_processors
    placement: Dict[NodeId, int] = {}
    start_time: Dict[NodeId, float] = {}
    finish_time: Dict[NodeId, float] = {}
    order: List[NodeId] = []

    def earliest_start(v: NodeId, p: int) -> float:
        start = proc_free[p]
        for u in dag.parents(v):
            if dag.is_source(u):
                continue
            ready_at = finish_time[u]
            if placement[u] != p:
                ready_at += g * dag.mu(u)   # value must be communicated
            start = max(start, ready_at)
        return start

    while ready:
        # pick the (task, processor) pair with the globally earliest start;
        # ties are broken deterministically by node id
        best: Optional[Tuple[float, str, NodeId, int]] = None
        for v in ready:
            for p in range(num_processors):
                start = earliest_start(v, p)
                key = (start, str(v), v, p)
                if best is None or key[:2] < best[:2]:
                    best = key
        assert best is not None
        start, _, v, p = best
        placement[v] = p
        start_time[v] = start
        finish_time[v] = start + dag.omega(v)
        proc_free[p] = finish_time[v]
        order.append(v)
        ready.discard(v)
        for child in dag.children(v):
            if child in pending:
                pending[child] -= 1
                if pending[child] == 0:
                    ready.add(child)

    makespan = max(finish_time.values()) if finish_time else 0.0
    return EtfPlacement(
        placement=placement,
        order=order,
        start_time=start_time,
        finish_time=finish_time,
        makespan=makespan,
    )


def etf_bsp_schedule(dag: ComputationalDag, num_processors: int, g: float = 1.0) -> BspSchedule:
    """ETF placement converted into a valid BSP schedule."""
    result = etf_placement(dag, num_processors, g=g)
    topo_pos = {v: i for i, v in enumerate(dag.topological_order())}
    order = sorted(result.order, key=lambda v: (result.start_time[v], topo_pos[v]))
    return superstepify(dag, result.placement, order, num_processors)
