"""BSP cost model for first-stage schedules.

This evaluator is only used to guide and report on the *first stage* of the
two-stage approach (the MBSP costs of the final schedules are always computed
by :mod:`repro.model.cost`).  It follows the standard BSP accounting: per
superstep the work term is the maximum processor work, the communication term
is ``g`` times the maximum h-relation (per-processor maximum of data sent and
received), and every superstep pays the synchronization latency ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.bsp.schedule import BspSchedule


@dataclass(frozen=True)
class BspCostBreakdown:
    """Decomposition of the BSP cost into work, communication and latency."""

    work: float
    communication: float
    synchronization: float

    @property
    def total(self) -> float:
        return self.work + self.communication + self.synchronization


def bsp_cost_breakdown(schedule: BspSchedule, g: float, L: float) -> BspCostBreakdown:
    """Evaluate a BSP schedule under the classic BSP cost model."""
    dag = schedule.dag
    P = schedule.num_processors
    S = schedule.num_supersteps

    work_total = 0.0
    comm_total = 0.0
    sync_total = 0.0

    # value u (computed on proc q in superstep s) must be sent to proc p != q
    # in the earliest superstep before any of u's children run on p.  We charge
    # the send in the communication phase of superstep s (BSP semantics), and
    # the matching receive on p in the same phase.
    sent: List[List[float]] = [[0.0] * P for _ in range(S)]
    received: List[List[float]] = [[0.0] * P for _ in range(S)]

    for u in dag.nodes:
        if dag.is_source(u):
            # source values must be brought to every processor that uses them;
            # charge a receive in the superstep before the first use.
            users: Set[int] = set()
            first_use: Dict[int, int] = {}
            for v in dag.children(u):
                if not schedule.is_assigned(v):
                    continue
                p = schedule.processor_of(v)
                s = schedule.superstep_of(v)
                users.add(p)
                first_use[p] = min(first_use.get(p, s), s)
            for p in users:
                s = max(first_use[p] - 1, 0)
                received[s][p] += dag.mu(u)
            continue
        if not schedule.is_assigned(u):
            continue
        q = schedule.processor_of(u)
        s_u = schedule.superstep_of(u)
        targets: Set[int] = set()
        for v in dag.children(u):
            if not schedule.is_assigned(v):
                continue
            p = schedule.processor_of(v)
            if p != q:
                targets.add(p)
        for p in targets:
            sent[s_u][q] += dag.mu(u)
            received[s_u][p] += dag.mu(u)

    for s in range(S):
        work_s = 0.0
        for p in range(P):
            work_s = max(work_s, sum(dag.omega(v) for v in schedule.cell(p, s)))
        h_relation = max(
            max(sent[s][p], received[s][p]) for p in range(P)
        ) if P else 0.0
        work_total += work_s
        comm_total += g * h_relation
        sync_total += L
    return BspCostBreakdown(work=work_total, communication=comm_total, synchronization=sync_total)


def bsp_cost(schedule: BspSchedule, g: float, L: float) -> float:
    """Total BSP cost of ``schedule``."""
    return bsp_cost_breakdown(schedule, g, L).total
