"""Depth-first single-processor scheduler.

For ``P = 1`` the MBSP problem degenerates into the red-blue pebble game with
compute costs, and the paper uses a DFS ordering combined with the clairvoyant
eviction policy as the (surprisingly strong) baseline.  The DFS order computes
a node as soon as all its parents are available, diving into children before
siblings, which keeps the working set small on tree-like and chain-like DAGs.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.dag.graph import ComputationalDag, NodeId
from repro.bsp.schedule import BspSchedule
from repro.bsp.superstepify import superstepify


def dfs_order(dag: ComputationalDag) -> List[NodeId]:
    """A depth-first topological order of the non-source nodes.

    The traversal starts from the children of the source nodes and always
    prefers to continue with a child of the most recently computed node whose
    other inputs are already available.
    """
    computable = [v for v in dag.nodes if not dag.is_source(v)]
    pending: Dict[NodeId, int] = {
        v: sum(1 for u in dag.parents(v) if not dag.is_source(u)) for v in computable
    }
    order: List[NodeId] = []
    done: Set[NodeId] = set()
    stack: List[NodeId] = [v for v in reversed(computable) if pending[v] == 0]
    queued: Set[NodeId] = set(stack)

    while stack:
        v = stack.pop()
        if v in done:
            continue
        if pending[v] > 0:
            # not ready yet; it will be re-pushed when its last parent finishes
            queued.discard(v)
            continue
        order.append(v)
        done.add(v)
        # push ready children (depth-first: children explored before siblings)
        for child in reversed(dag.children(v)):
            pending[child] -= 1
            if pending[child] == 0 and child not in done and child not in queued:
                stack.append(child)
                queued.add(child)
    # any stragglers (possible when a child's readiness was decided before a
    # later parent finished) are appended in topological order
    if len(order) < len(computable):
        remaining = [v for v in dag.topological_order() if v in pending and v not in done]
        order.extend(remaining)
    return order


def dfs_bsp_schedule(dag: ComputationalDag) -> BspSchedule:
    """Single-processor BSP schedule following the DFS order (one superstep)."""
    order = dfs_order(dag)
    placement = {v: 0 for v in order}
    return superstepify(dag, placement, order, num_processors=1)
