"""BSP scheduling substrate: schedule representation, cost model, schedulers."""

from repro.bsp.schedule import BspAssignment, BspSchedule
from repro.bsp.cost import BspCostBreakdown, bsp_cost, bsp_cost_breakdown
from repro.bsp.greedy import GreedyBspParameters, GreedyBspScheduler, greedy_bsp_schedule
from repro.bsp.cilk import WorkStealingTrace, cilk_bsp_schedule, simulate_work_stealing
from repro.bsp.dfs import dfs_bsp_schedule, dfs_order
from repro.bsp.superstepify import placement_from_bsp, superstepify
from repro.bsp.ilp import BspIlpConfig, IlpBspScheduler, ilp_bsp_schedule
from repro.bsp.etf import EtfPlacement, etf_bsp_schedule, etf_placement

__all__ = [
    "BspAssignment",
    "BspSchedule",
    "BspCostBreakdown",
    "bsp_cost",
    "bsp_cost_breakdown",
    "GreedyBspParameters",
    "GreedyBspScheduler",
    "greedy_bsp_schedule",
    "WorkStealingTrace",
    "cilk_bsp_schedule",
    "simulate_work_stealing",
    "dfs_bsp_schedule",
    "dfs_order",
    "placement_from_bsp",
    "superstepify",
    "BspIlpConfig",
    "IlpBspScheduler",
    "ilp_bsp_schedule",
    "EtfPlacement",
    "etf_bsp_schedule",
    "etf_placement",
]
