"""BSP schedule representation (the first stage of the two-stage approach).

A BSP schedule assigns every *computable* (non-source) node of the DAG to a
processor and a superstep, together with an execution order inside each
(processor, superstep) cell.  Source nodes are not computed in the MBSP model
(they are loaded from slow memory), so they do not appear in the assignment.

Validity (the classical BSP precedence rule): for every edge ``u -> v``
between computable nodes, either ``superstep(u) < superstep(v)``, or the two
nodes share processor *and* superstep with ``u`` ordered before ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.exceptions import ScheduleError


@dataclass
class BspAssignment:
    """Placement of one node: processor, superstep, and order inside the cell."""

    processor: int
    superstep: int
    order: int = 0


class BspSchedule:
    """A BSP schedule of a computational DAG on ``num_processors`` processors."""

    def __init__(self, dag: ComputationalDag, num_processors: int) -> None:
        if num_processors < 1:
            raise ScheduleError("num_processors must be at least 1")
        self.dag = dag
        self.num_processors = num_processors
        self._assignment: Dict[NodeId, BspAssignment] = {}

    # ------------------------------------------------------------------
    def assign(self, node: NodeId, processor: int, superstep: int, order: Optional[int] = None) -> None:
        """Assign ``node`` to ``(processor, superstep)``.

        The order inside the cell defaults to the current cell size, so
        calling :meth:`assign` in execution order produces correct orders.
        """
        if node not in self.dag:
            raise ScheduleError(f"unknown node {node!r}")
        if self.dag.is_source(node):
            raise ScheduleError(f"source node {node!r} is not computed in the MBSP model")
        if not 0 <= processor < self.num_processors:
            raise ScheduleError(f"processor {processor} out of range")
        if superstep < 0:
            raise ScheduleError(f"superstep {superstep} must be non-negative")
        if order is None:
            order = len(self.cell(processor, superstep))
        self._assignment[node] = BspAssignment(processor, superstep, order)

    def processor_of(self, node: NodeId) -> int:
        return self._assignment[node].processor

    def superstep_of(self, node: NodeId) -> int:
        return self._assignment[node].superstep

    def is_assigned(self, node: NodeId) -> bool:
        return node in self._assignment

    @property
    def assignment(self) -> Dict[NodeId, BspAssignment]:
        return dict(self._assignment)

    @property
    def num_supersteps(self) -> int:
        if not self._assignment:
            return 0
        return 1 + max(a.superstep for a in self._assignment.values())

    # ------------------------------------------------------------------
    def cell(self, processor: int, superstep: int) -> List[NodeId]:
        """Nodes of one (processor, superstep) cell in execution order."""
        nodes = [
            v
            for v, a in self._assignment.items()
            if a.processor == processor and a.superstep == superstep
        ]
        nodes.sort(key=lambda v: self._assignment[v].order)
        return nodes

    def superstep_nodes(self, superstep: int) -> List[NodeId]:
        """All nodes of one superstep, grouped by processor order."""
        out: List[NodeId] = []
        for p in range(self.num_processors):
            out.extend(self.cell(p, superstep))
        return out

    def compute_lists(self) -> List[List[List[NodeId]]]:
        """Nested lists ``[superstep][processor] -> ordered node list``."""
        return [
            [self.cell(p, s) for p in range(self.num_processors)]
            for s in range(self.num_supersteps)
        ]

    def work_per_processor(self) -> List[float]:
        """Total compute weight assigned to each processor."""
        work = [0.0] * self.num_processors
        for v, a in self._assignment.items():
            work[a.processor] += self.dag.omega(v)
        return work

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ScheduleError` if the schedule is incomplete or invalid."""
        computable = [v for v in self.dag.nodes if not self.dag.is_source(v)]
        missing = [v for v in computable if v not in self._assignment]
        if missing:
            raise ScheduleError(f"nodes not assigned in the BSP schedule: {missing!r}")
        for u, v in self.dag.edges():
            if self.dag.is_source(u):
                continue
            au, av = self._assignment[u], self._assignment[v]
            if au.superstep < av.superstep:
                continue
            if (
                au.superstep == av.superstep
                and au.processor == av.processor
                and au.order < av.order
            ):
                continue
            raise ScheduleError(
                f"BSP precedence violated on edge {u!r} -> {v!r}: "
                f"{(au.processor, au.superstep, au.order)} !< "
                f"{(av.processor, av.superstep, av.order)}"
            )

    def is_valid(self) -> bool:
        try:
            self.validate()
            return True
        except ScheduleError:
            return False

    # ------------------------------------------------------------------
    def compact_supersteps(self) -> "BspSchedule":
        """Renumber supersteps to remove empty ones (stable)."""
        used = sorted({a.superstep for a in self._assignment.values()})
        remap = {s: i for i, s in enumerate(used)}
        out = BspSchedule(self.dag, self.num_processors)
        for v, a in self._assignment.items():
            out.assign(v, a.processor, remap[a.superstep], a.order)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BspSchedule(dag={self.dag.name!r}, P={self.num_processors}, "
            f"supersteps={self.num_supersteps}, assigned={len(self._assignment)})"
        )
