"""Greedy BSP scheduler in the spirit of the BSPg heuristic of Papp et al. [36].

The original BSPg algorithm grows supersteps greedily: inside the current
superstep it repeatedly assigns ready nodes to processors, balancing work
while preferring placements that avoid communication; a new superstep starts
when no more nodes can be scheduled under the BSP precedence rule (a node may
only be computed in the current superstep if all its cross-processor inputs
were produced in *earlier* supersteps).

This module is a from-scratch reimplementation of that strategy:

* nodes are prioritised by their *bottom level* (longest compute-weighted
  path to a sink), the classic critical-path priority;
* candidate processors are scored by data locality (memory weight of inputs
  already present on the processor) minus a load-imbalance penalty;
* a superstep ends when the ready set is empty, or when the current superstep
  already holds a large amount of work and ending it would unlock many
  currently blocked nodes (this mirrors BSPg's balance/locality trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.bsp.schedule import BspSchedule


@dataclass
class GreedyBspParameters:
    """Tunable knobs of the greedy BSP scheduler.

    Attributes
    ----------
    locality_weight:
        Weight of the data-locality term in the processor score.
    balance_weight:
        Weight of the load-imbalance penalty in the processor score.
    superstep_work_factor:
        A superstep is cut early once every processor holds at least
        ``superstep_work_factor * total_work / P`` work and some nodes are
        blocked only by the superstep boundary.
    """

    locality_weight: float = 2.0
    balance_weight: float = 1.0
    superstep_work_factor: float = 0.4


def _bottom_levels(dag: ComputationalDag) -> Dict[NodeId, float]:
    """Longest compute-weighted path from each node to a sink (inclusive)."""
    levels: Dict[NodeId, float] = {}
    for v in reversed(dag.topological_order()):
        own = 0.0 if dag.is_source(v) else dag.omega(v)
        children = dag.children(v)
        levels[v] = own + (max(levels[c] for c in children) if children else 0.0)
    return levels


class GreedyBspScheduler:
    """BSPg-style greedy BSP list scheduler."""

    def __init__(self, parameters: Optional[GreedyBspParameters] = None) -> None:
        self.parameters = parameters or GreedyBspParameters()

    # ------------------------------------------------------------------
    def schedule(self, dag: ComputationalDag, num_processors: int, g: float = 1.0) -> BspSchedule:
        """Compute a valid BSP schedule of ``dag`` on ``num_processors`` processors."""
        params = self.parameters
        schedule = BspSchedule(dag, num_processors)
        computable = [v for v in dag.nodes if not dag.is_source(v)]
        if not computable:
            return schedule

        bottom = _bottom_levels(dag)
        total_work = sum(dag.omega(v) for v in computable)
        target_work = params.superstep_work_factor * total_work / max(num_processors, 1)

        # location of each produced value: processor -> set of nodes whose
        # value it holds "locally" (computed there, or a source it has fetched)
        produced_on: Dict[NodeId, int] = {}
        done_before: Set[NodeId] = set()      # computed in earlier supersteps
        remaining: Set[NodeId] = set(computable)
        superstep = 0

        while remaining:
            done_this_step: Dict[NodeId, int] = {}  # node -> processor (current superstep)
            load = [0.0] * num_processors
            progress = True
            while progress:
                progress = False
                ready = self._ready_nodes(dag, remaining, done_before, done_this_step)
                if not ready:
                    break
                # stop extending the superstep once every processor carries a
                # reasonable chunk of work and new nodes keep piling onto the
                # same processors (communication-bound growth)
                if min(load) >= target_work and self._blocked_exists(
                    dag, remaining, done_before, done_this_step
                ):
                    break
                # highest priority ready node first
                ready.sort(key=lambda v: (-bottom[v], str(v)))
                for v in ready:
                    allowed = self._allowed_processors(
                        dag, v, done_this_step, num_processors
                    )
                    if not allowed:
                        continue
                    proc = self._best_processor(
                        dag, v, allowed, load, produced_on, params
                    )
                    schedule.assign(v, proc, superstep)
                    load[proc] += dag.omega(v)
                    done_this_step[v] = proc
                    produced_on[v] = proc
                    remaining.discard(v)
                    progress = True
                    break  # re-evaluate priorities after each placement
            done_before.update(done_this_step.keys())
            superstep += 1
            if not done_this_step and remaining:
                # safety net: should not happen on a DAG, but avoid spinning
                raise RuntimeError("greedy BSP scheduler made no progress")
        schedule.validate()
        return schedule

    # ------------------------------------------------------------------
    def _ready_nodes(
        self,
        dag: ComputationalDag,
        remaining: Set[NodeId],
        done_before: Set[NodeId],
        done_this_step: Dict[NodeId, int],
    ) -> List[NodeId]:
        """Nodes whose parents are all available for *some* processor."""
        ready = []
        for v in remaining:
            ok = True
            same_step_procs: Set[int] = set()
            for u in dag.parents(v):
                if dag.is_source(u) or u in done_before:
                    continue
                if u in done_this_step:
                    same_step_procs.add(done_this_step[u])
                else:
                    ok = False
                    break
            if ok and len(same_step_procs) <= 1:
                ready.append(v)
        return ready

    def _blocked_exists(
        self,
        dag: ComputationalDag,
        remaining: Set[NodeId],
        done_before: Set[NodeId],
        done_this_step: Dict[NodeId, int],
    ) -> bool:
        """Whether some remaining node is blocked only by the superstep boundary."""
        for v in remaining:
            parents = [
                u for u in dag.parents(v) if not dag.is_source(u) and u not in done_before
            ]
            if parents and all(u in done_this_step for u in parents):
                procs = {done_this_step[u] for u in parents}
                if len(procs) > 1:
                    return True
        return False

    def _allowed_processors(
        self,
        dag: ComputationalDag,
        node: NodeId,
        done_this_step: Dict[NodeId, int],
        num_processors: int,
    ) -> List[int]:
        """Processors on which ``node`` may run in the current superstep."""
        forced: Set[int] = set()
        for u in dag.parents(node):
            if u in done_this_step:
                forced.add(done_this_step[u])
        if len(forced) > 1:
            return []
        if len(forced) == 1:
            return [next(iter(forced))]
        return list(range(num_processors))

    def _best_processor(
        self,
        dag: ComputationalDag,
        node: NodeId,
        allowed: List[int],
        load: List[float],
        produced_on: Dict[NodeId, int],
        params: GreedyBspParameters,
    ) -> int:
        """Score candidate processors by locality and balance; return the best."""
        min_load = min(load)
        best_proc, best_score = allowed[0], float("-inf")
        for p in allowed:
            locality = sum(
                dag.mu(u)
                for u in dag.parents(node)
                if produced_on.get(u) == p
            )
            score = (
                params.locality_weight * locality
                - params.balance_weight * (load[p] - min_load)
            )
            if score > best_score + 1e-12:
                best_score = score
                best_proc = p
        return best_proc


def greedy_bsp_schedule(
    dag: ComputationalDag,
    num_processors: int,
    g: float = 1.0,
    parameters: Optional[GreedyBspParameters] = None,
) -> BspSchedule:
    """Convenience wrapper creating a :class:`GreedyBspScheduler` and running it."""
    return GreedyBspScheduler(parameters).schedule(dag, num_processors, g=g)
