"""Cilk-style randomized work-stealing scheduler (Blumofe & Leiserson [3]).

The scheduler simulates ``P`` workers executing the DAG asynchronously: every
worker owns a deque of ready tasks, works on its own deque LIFO, and steals
FIFO from a uniformly random victim when it runs dry.  The simulation is
event-driven over the compute weights; the result is a processor placement
plus an execution order, which :func:`repro.bsp.superstepify.superstepify`
turns into a BSP schedule for the two-stage pipeline.

This is the "practical" first-stage baseline of the paper's experiments
(combined with LRU eviction in the second stage).
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.bsp.schedule import BspSchedule
from repro.bsp.superstepify import superstepify


@dataclass
class WorkStealingTrace:
    """Outcome of the work-stealing simulation."""

    placement: Dict[NodeId, int]
    order: List[NodeId]
    finish_time: Dict[NodeId, float]
    makespan: float
    steals: int


def simulate_work_stealing(
    dag: ComputationalDag,
    num_processors: int,
    seed: int = 0,
    steal_latency: float = 0.0,
) -> WorkStealingTrace:
    """Simulate randomized work stealing and return the execution trace."""
    rng = random.Random(seed)
    computable = [v for v in dag.nodes if not dag.is_source(v)]
    pending = {
        v: sum(1 for u in dag.parents(v) if not dag.is_source(u)) for v in computable
    }

    deques: List[Deque[NodeId]] = [deque() for _ in range(num_processors)]
    # initially ready nodes are dealt round-robin, as if spawned by a root task
    initially_ready = [v for v in computable if pending[v] == 0]
    for i, v in enumerate(initially_ready):
        deques[i % num_processors].append(v)

    clock = [0.0] * num_processors
    placement: Dict[NodeId, int] = {}
    order: List[NodeId] = []
    finish_time: Dict[NodeId, float] = {}
    steals = 0
    remaining = len(computable)

    # event queue of idle processors ordered by their local time
    idle = [(clock[p], p) for p in range(num_processors)]
    heapq.heapify(idle)

    while remaining > 0:
        time_p, p = heapq.heappop(idle)
        task: Optional[NodeId] = None
        if deques[p]:
            task = deques[p].pop()          # own deque: LIFO
        else:
            victims = [q for q in range(num_processors) if q != p and deques[q]]
            if victims:
                victim = rng.choice(victims)
                task = deques[victim].popleft()  # steal: FIFO
                steals += 1
                time_p += steal_latency
        if task is None:
            # nothing to do: fast-forward to the next time any work may appear
            busy_times = [t for (t, q) in idle if deques[q]] or [t for (t, _q) in idle]
            next_time = min(busy_times) if busy_times else time_p
            heapq.heappush(idle, (max(time_p, next_time) + 1e-9, p))
            continue
        # a task only starts once all its parents have finished (the deque
        # discipline already guarantees this, but cross-processor finishes may
        # be later than the local clock)
        start = max(
            [time_p]
            + [finish_time[u] for u in dag.parents(task) if u in finish_time]
        )
        end = start + dag.omega(task)
        clock[p] = end
        placement[task] = p
        order.append(task)
        finish_time[task] = end
        remaining -= 1
        for child in dag.children(task):
            if child in pending:
                pending[child] -= 1
                if pending[child] == 0:
                    deques[p].append(child)
        heapq.heappush(idle, (end, p))

    return WorkStealingTrace(
        placement=placement,
        order=order,
        finish_time=finish_time,
        makespan=max(finish_time.values()) if finish_time else 0.0,
        steals=steals,
    )


def cilk_bsp_schedule(
    dag: ComputationalDag,
    num_processors: int,
    seed: int = 0,
) -> BspSchedule:
    """Work-stealing placement converted into a BSP schedule."""
    trace = simulate_work_stealing(dag, num_processors, seed=seed)
    # the execution order must be topological for superstepification; sort by
    # finish time which respects precedence by construction
    order = sorted(trace.order, key=lambda v: trace.finish_time[v])
    return superstepify(dag, trace.placement, order, num_processors)
