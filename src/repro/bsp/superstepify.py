"""Conversion of processor-ordered executions into BSP supersteps.

Asynchronous schedulers (work stealing, DFS, makespan list schedulers) output
an assignment of nodes to processors together with a global execution order.
To feed such a schedule into the two-stage pipeline it must first be expressed
as a BSP schedule: this module assigns superstep indices such that every
cross-processor dependency crosses a superstep boundary, which is the minimal
superstep structure consistent with the given placement.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.exceptions import ScheduleError
from repro.bsp.schedule import BspSchedule


def superstepify(
    dag: ComputationalDag,
    placement: Dict[NodeId, int],
    order: Sequence[NodeId],
    num_processors: int,
) -> BspSchedule:
    """Build a BSP schedule from a processor placement and an execution order.

    Parameters
    ----------
    dag:
        The computational DAG.
    placement:
        Processor index for every non-source node.
    order:
        A global execution order of the non-source nodes (must be a
        topological order of the non-source subgraph).
    num_processors:
        Number of processors.

    The superstep of a node is the smallest index that satisfies the BSP
    precedence rule given its parents' supersteps:
    ``superstep(v) = max(superstep(u) + [1 if different processor else 0])``.
    """
    computable = [v for v in dag.nodes if not dag.is_source(v)]
    missing = [v for v in computable if v not in placement]
    if missing:
        raise ScheduleError(f"placement missing nodes {missing!r}")
    order_pos = {v: i for i, v in enumerate(order)}
    missing_order = [v for v in computable if v not in order_pos]
    if missing_order:
        raise ScheduleError(f"execution order missing nodes {missing_order!r}")

    superstep: Dict[NodeId, int] = {}
    for v in sorted(computable, key=lambda v: order_pos[v]):
        s = 0
        for u in dag.parents(v):
            if dag.is_source(u):
                continue
            if u not in superstep:
                raise ScheduleError(
                    f"execution order is not topological: {u!r} must precede {v!r}"
                )
            bump = 0 if placement[u] == placement[v] else 1
            s = max(s, superstep[u] + bump)
        superstep[v] = s

    schedule = BspSchedule(dag, num_processors)
    for v in sorted(computable, key=lambda v: (superstep[v], order_pos[v])):
        schedule.assign(v, placement[v], superstep[v])
    schedule.validate()
    return schedule


def placement_from_bsp(schedule: BspSchedule) -> Tuple[Dict[NodeId, int], List[NodeId]]:
    """Inverse helper: extract (placement, execution order) from a BSP schedule."""
    placement: Dict[NodeId, int] = {}
    order: List[NodeId] = []
    for s in range(schedule.num_supersteps):
        for p in range(schedule.num_processors):
            for v in schedule.cell(p, s):
                placement[v] = p
                order.append(v)
    return placement, order
