"""Divide-and-conquer ILP scheduling for larger DAGs (Section 6.3, Appendix C.2).

The pipeline has four steps:

1. **Partition** — the DAG is recursively bipartitioned with the ILP-based
   acyclic partitioner until every part has at most ``max_part_size`` nodes.
2. **Plan** — the parts are contracted into a quotient DAG; a high-level plan
   assigns a subset of the processors to every part (independent parts split
   the machine proportionally to their work).
3. **Solve** — every part becomes an MBSP sub-problem (boundary values from
   earlier parts act as extra source values; values consumed by later parts
   must be left in slow memory) which is solved with the full ILP scheduler,
   initialised with its own two-stage baseline.
4. **Concatenate** — the sub-schedules are stitched together; a part starts
   after all its quotient predecessors and after its processors are free, and
   leftover cache contents of a processor are evicted before it starts a new
   part.

As in the paper this is a heuristic: even if all sub-ILPs were solved to
optimality, the concatenation need not be globally optimal, and on DAGs that
do not partition into loosely coupled parts it can end up worse than the
two-stage baseline (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.bsp.greedy import greedy_bsp_schedule
from repro.cache.conversion import two_stage_schedule
from repro.cache.policies import ClairvoyantPolicy
from repro.model.architecture import MbspArchitecture
from repro.model.cost import schedule_cost
from repro.model.instance import MbspInstance
from repro.model.schedule import MbspSchedule, Superstep
from repro.model.validation import replay_final_state, validate_schedule
from repro.core.acyclic_partition import (
    PartitionConfig,
    RecursivePartition,
    recursive_acyclic_partition,
)
from repro.core.full_ilp import BoundaryConditions, MbspIlpConfig
from repro.core.quotient import SubproblemPlan, build_quotient_dag, plan_subproblems
from repro.core.scheduler import MbspIlpScheduler
from repro.core.two_stage import TwoStageResult, baseline_schedule


@dataclass
class SubproblemResult:
    """Diagnostics for one part of the divide-and-conquer run."""

    part: int
    num_nodes: int
    processors: List[int]
    baseline_cost: float
    ilp_cost: Optional[float]
    used_ilp: bool


@dataclass
class DivideAndConquerResult:
    """Outcome of the divide-and-conquer scheduler on one instance."""

    instance: MbspInstance
    partition: RecursivePartition
    baseline: TwoStageResult
    dac_schedule: MbspSchedule
    dac_cost: float
    subproblems: List[SubproblemResult]

    @property
    def best_schedule(self) -> MbspSchedule:
        """The cheaper of the divide-and-conquer and baseline schedules."""
        if self.dac_cost <= self.baseline.cost:
            return self.dac_schedule
        return self.baseline.mbsp_schedule

    @property
    def best_cost(self) -> float:
        return min(self.dac_cost, self.baseline.cost)

    @property
    def improvement_ratio(self) -> float:
        """Divide-and-conquer cost over baseline cost (can exceed 1)."""
        if self.baseline.cost == 0:
            return 1.0
        return self.dac_cost / self.baseline.cost


class DivideAndConquerScheduler:
    """Partition-based ILP scheduler for DAGs too large for the full ILP."""

    def __init__(
        self,
        ilp_config: Optional[MbspIlpConfig] = None,
        partition_config: Optional[PartitionConfig] = None,
    ) -> None:
        self.ilp_config = ilp_config or MbspIlpConfig()
        if partition_config is None:
            # the partition ILPs inherit the sub-problem ILPs' backend unless
            # the caller configured the partitioner explicitly
            partition_config = PartitionConfig(
                max_part_size=30, backend=self.ilp_config.backend
            )
        self.partition_config = partition_config

    # ------------------------------------------------------------------
    def schedule(
        self,
        instance: MbspInstance,
        baseline: Optional[TwoStageResult] = None,
    ) -> DivideAndConquerResult:
        """Run the full divide-and-conquer pipeline on ``instance``."""
        instance.require_feasible()
        dag = instance.dag
        if baseline is None:
            baseline = baseline_schedule(instance, synchronous=self.ilp_config.synchronous)

        partition = recursive_acyclic_partition(dag, self.partition_config)
        quotient = build_quotient_dag(dag, partition)
        plans = plan_subproblems(quotient, instance.num_processors)

        part_nodes: Dict[int, List[NodeId]] = {
            part: partition.nodes_of(part) for part in range(partition.num_parts)
        }
        global_schedule, sub_results = self._solve_and_concatenate(
            instance, partition, plans, part_nodes
        )
        validate_schedule(global_schedule, require_all_computed=False)
        dac_cost = schedule_cost(global_schedule, synchronous=self.ilp_config.synchronous)
        return DivideAndConquerResult(
            instance=instance,
            partition=partition,
            baseline=baseline,
            dac_schedule=global_schedule,
            dac_cost=dac_cost,
            subproblems=sub_results,
        )

    # ------------------------------------------------------------------
    # sub-problem construction
    # ------------------------------------------------------------------
    def _build_subdag(
        self,
        dag: ComputationalDag,
        nodes: Sequence[NodeId],
        part: int,
    ) -> Tuple[ComputationalDag, Set[NodeId], Set[NodeId]]:
        """Sub-DAG of one part plus its boundary inputs.

        Returns ``(sub_dag, boundary_inputs, outputs_for_later_parts)``.
        Boundary inputs (values produced by earlier parts or original sources
        outside the part) are added as source nodes of the sub-DAG; they are
        available in slow memory when the sub-problem starts.
        """
        node_set = set(nodes)
        boundary: Set[NodeId] = set()
        for v in nodes:
            for u in dag.parents(v):
                if u not in node_set:
                    boundary.add(u)
        sub = ComputationalDag(name=f"{dag.name}_part{part}")
        for u in boundary:
            sub.add_node(u, omega=dag.omega(u), mu=dag.mu(u))
        for v in nodes:
            sub.add_node(v, omega=dag.omega(v), mu=dag.mu(v))
        for v in nodes:
            for u in dag.parents(v):
                sub.add_edge(u, v)
        outputs = {
            v
            for v in nodes
            if any(child not in node_set for child in dag.children(v))
        }
        return sub, boundary, outputs

    def _solve_subproblem(
        self,
        instance: MbspInstance,
        sub_dag: ComputationalDag,
        outputs: Set[NodeId],
        num_processors: int,
        part: int,
    ) -> Tuple[MbspSchedule, SubproblemResult]:
        """Schedule one part: two-stage baseline, then the ILP on top of it."""
        architecture = MbspArchitecture(
            num_processors=num_processors,
            cache_size=instance.cache_size,
            g=instance.g,
            L=instance.L,
        )
        sub_instance = MbspInstance(dag=sub_dag, architecture=architecture)
        # values consumed by later parts must end up in slow memory; sub-DAG
        # sinks are required automatically, so only pass the genuinely extra ones
        extra_required = {v for v in outputs if not sub_dag.is_sink(v)}

        bsp = greedy_bsp_schedule(sub_dag, num_processors, g=instance.g)
        sub_baseline_schedule = two_stage_schedule(
            bsp, sub_instance, ClairvoyantPolicy(), required_in_slow_memory=extra_required
        )
        baseline_cost = schedule_cost(
            sub_baseline_schedule, synchronous=self.ilp_config.synchronous
        )
        sub_baseline = TwoStageResult(
            bsp_schedule=bsp,
            mbsp_schedule=sub_baseline_schedule,
            cost=baseline_cost,
            scheduler_name="bspg",
            policy_name="clairvoyant",
        )

        boundary_conditions = BoundaryConditions(required_blue=extra_required)
        ilp_result = MbspIlpScheduler(self.ilp_config).schedule(
            sub_instance, baseline=sub_baseline, boundary=boundary_conditions
        )
        used_ilp = (
            ilp_result.ilp_cost is not None and ilp_result.ilp_cost < baseline_cost
        )
        schedule = ilp_result.best_schedule
        diag = SubproblemResult(
            part=part,
            num_nodes=sub_dag.num_nodes,
            processors=list(range(num_processors)),
            baseline_cost=baseline_cost,
            ilp_cost=ilp_result.ilp_cost,
            used_ilp=used_ilp,
        )
        return schedule, diag

    # ------------------------------------------------------------------
    # concatenation
    # ------------------------------------------------------------------
    def _solve_and_concatenate(
        self,
        instance: MbspInstance,
        partition: RecursivePartition,
        plans: List[SubproblemPlan],
        part_nodes: Dict[int, List[NodeId]],
    ) -> Tuple[MbspSchedule, List[SubproblemResult]]:
        dag = instance.dag
        P = instance.num_processors
        supersteps: List[Superstep] = []
        next_free = [0] * P
        part_end: Dict[int, int] = {}
        leftover_cache: Dict[int, Set[NodeId]] = {p: set() for p in range(P)}
        sub_results: List[SubproblemResult] = []

        def ensure_length(length: int) -> None:
            while len(supersteps) < length:
                supersteps.append(Superstep(P))

        for plan in plans:
            nodes = part_nodes[plan.part]
            if not nodes:
                continue
            sub_dag, _boundary, outputs = self._build_subdag(dag, nodes, plan.part)
            procs = plan.processors
            sub_schedule, diag = self._solve_subproblem(
                instance, sub_dag, outputs, len(procs), plan.part
            )
            diag.processors = list(procs)
            sub_results.append(diag)

            start = max(
                [next_free[q] for q in procs]
                + [part_end.get(pred, 0) for pred in plan.predecessors]
            )
            # streamlining (Appendix C.2): the first superstep of a sub-schedule
            # only performs I/O (nothing can be computed with an empty cache),
            # so it can be merged into the preceding superstep — values saved
            # there by predecessor parts become visible before the load phase
            first_local = sub_schedule.supersteps[0] if sub_schedule.supersteps else None
            merge_border = (
                start >= 1
                and first_local is not None
                and not any(ps.computed_nodes() for ps in first_local.processor_steps)
                # only merge when the part's processors are idle in the target
                # superstep: otherwise their previous part may still be loading
                # values there, and evicting its leftover cache in the same
                # superstep would break the phase ordering
                and all(next_free[q] <= start - 1 for q in procs)
            )
            offset = start - 1 if merge_border else start
            length = sub_schedule.num_supersteps
            ensure_length(offset + max(length, 1))

            # map local processors/supersteps into the global schedule
            for s, step in enumerate(sub_schedule.supersteps):
                target = supersteps[offset + s]
                for local_p, global_p in enumerate(procs):
                    local = step[local_p]
                    dest = target[global_p]
                    dest.compute_phase.extend(local.compute_phase)
                    dest.save_phase.extend(local.save_phase)
                    dest.delete_phase.extend(local.delete_phase)
                    dest.load_phase.extend(local.load_phase)

            # evict anything a processor still held from its previous part so
            # the memory bound keeps holding for the new sub-schedule
            first_step = supersteps[offset]
            for local_p, global_p in enumerate(procs):
                stale = leftover_cache[global_p]
                if stale:
                    first_step[global_p].delete_phase.extend(sorted(stale, key=str))
                    leftover_cache[global_p] = set()

            # remember what this sub-schedule leaves behind in each cache
            final_state = replay_final_state(sub_schedule)
            for local_p, global_p in enumerate(procs):
                leftover_cache[global_p] = set(final_state.red[local_p])
                next_free[global_p] = offset + length
            part_end[plan.part] = offset + length

        schedule = MbspSchedule(instance, supersteps)
        return schedule.drop_empty_supersteps(), sub_results
