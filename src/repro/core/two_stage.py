"""The two-stage baseline pipelines (Section 4, Section 7.1).

A two-stage scheduler combines a first-stage (memory-oblivious) BSP scheduler
with a second-stage cache-management policy:

* ``bspg + clairvoyant`` — the paper's main baseline,
* ``cilk + lru`` — the "practical" baseline,
* ``bsp-ilp + clairvoyant`` — the stronger baseline with an ILP first stage,
* ``dfs + clairvoyant`` — the single-processor (red-blue pebbling) baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.exceptions import ConfigurationError
from repro.bsp.cilk import cilk_bsp_schedule
from repro.bsp.dfs import dfs_bsp_schedule
from repro.bsp.etf import etf_bsp_schedule
from repro.bsp.greedy import greedy_bsp_schedule
from repro.bsp.ilp import BspIlpConfig, ilp_bsp_schedule
from repro.bsp.schedule import BspSchedule
from repro.cache.conversion import two_stage_schedule
from repro.cache.policies import ClairvoyantPolicy, EvictionPolicy, LruPolicy, make_policy
from repro.model.cost import schedule_cost
from repro.model.instance import MbspInstance
from repro.model.schedule import MbspSchedule
from repro.model.validation import validate_schedule


@dataclass
class TwoStageResult:
    """Outcome of a two-stage run: both stages plus the evaluated cost."""

    bsp_schedule: BspSchedule
    mbsp_schedule: MbspSchedule
    cost: float
    scheduler_name: str
    policy_name: str


def _first_stage(
    name: str,
    instance: MbspInstance,
    seed: int,
    bsp_ilp_config: Optional[BspIlpConfig],
) -> BspSchedule:
    dag = instance.dag
    P = instance.num_processors
    key = name.lower()
    if key in ("bspg", "greedy"):
        return greedy_bsp_schedule(dag, P, g=instance.g)
    if key == "cilk":
        return cilk_bsp_schedule(dag, P, seed=seed)
    if key == "etf":
        return etf_bsp_schedule(dag, P, g=instance.g)
    if key == "dfs":
        if P != 1:
            # the DFS scheduler is single-processor by definition; it is used
            # for the P = 1 red-blue pebbling experiments
            raise ConfigurationError("the DFS first stage requires P = 1")
        return dfs_bsp_schedule(dag)
    if key in ("bsp-ilp", "bsp_ilp", "ilp"):
        return ilp_bsp_schedule(dag, P, g=instance.g, L=instance.L, config=bsp_ilp_config)
    raise ConfigurationError(
        f"unknown first-stage scheduler {name!r}; "
        f"available: bspg, cilk, etf, dfs, bsp-ilp"
    )


def run_two_stage(
    instance: MbspInstance,
    scheduler: str = "bspg",
    policy: Optional[EvictionPolicy | str] = None,
    synchronous: bool = True,
    seed: int = 0,
    bsp_ilp_config: Optional[BspIlpConfig] = None,
    validate: bool = True,
) -> TwoStageResult:
    """Run a two-stage pipeline on ``instance`` and return schedule and cost.

    Parameters
    ----------
    scheduler:
        First-stage scheduler: ``"bspg"``, ``"cilk"``, ``"dfs"`` or ``"bsp-ilp"``.
    policy:
        Second-stage eviction policy (object or name); defaults to clairvoyant.
    synchronous:
        Whether the reported cost uses the synchronous or asynchronous model.
    """
    if policy is None:
        policy_obj: EvictionPolicy = ClairvoyantPolicy()
    elif isinstance(policy, str):
        policy_obj = make_policy(policy)
    else:
        policy_obj = policy

    bsp = _first_stage(scheduler, instance, seed, bsp_ilp_config)
    mbsp = two_stage_schedule(bsp, instance, policy_obj)
    if validate:
        validate_schedule(mbsp)
    cost = schedule_cost(mbsp, synchronous=synchronous)
    return TwoStageResult(
        bsp_schedule=bsp,
        mbsp_schedule=mbsp,
        cost=cost,
        scheduler_name=scheduler,
        policy_name=policy_obj.name,
    )


def baseline_schedule(
    instance: MbspInstance,
    synchronous: bool = True,
    seed: int = 0,
) -> TwoStageResult:
    """The paper's main baseline: BSPg first stage + clairvoyant eviction.

    For single-processor instances the DFS ordering is used instead, matching
    the red-blue pebbling experiments of Section 7.2.
    """
    scheduler = "dfs" if instance.num_processors == 1 else "bspg"
    return run_two_stage(
        instance,
        scheduler=scheduler,
        policy=ClairvoyantPolicy(),
        synchronous=synchronous,
        seed=seed,
    )


def practical_baseline_schedule(
    instance: MbspInstance,
    synchronous: bool = True,
    seed: int = 0,
) -> TwoStageResult:
    """The "application-oriented" baseline: Cilk work stealing + LRU eviction."""
    return run_two_stage(
        instance,
        scheduler="cilk",
        policy=LruPolicy(),
        synchronous=synchronous,
        seed=seed,
    )
