"""Encoding of explicit MBSP schedules into full ILP variable assignments.

This is the inverse of :mod:`repro.core.extraction`: given a *valid*
:class:`~repro.model.schedule.MbspSchedule` and a freshly built model of
:class:`~repro.core.full_ilp.MbspIlpBuilder`, produce a complete variable
assignment (operation binaries, pebble-state binaries, phase indicators and
the continuous cost accumulators) that satisfies every model constraint and
whose objective is at most the schedule's synchronous cost.  Solver backends
can install the assignment as a true warm-start *solution*
(``SolverOptions.warm_start_solution``): the pure-Python branch and bound
starts from it as its initial incumbent, and the HiGHS backend derives an
objective cutoff row from it.

The encoding mirrors the schedule's superstep structure step by step:

* every compute phase becomes one or more *compute steps* — a phase is split
  whenever its interleaved DELETE operations are needed to keep the merged
  step within the cache bound (constraint (7) charges a merged step with its
  start state plus everything it computes), or when a node is computed twice
  in one phase;
* the save phase becomes one *communication step*, the load phase a second
  one — they are merged into a single step when no loaded value depends on a
  same-superstep save (constraint (1) requires a blue pebble at the *start*
  of the step) and the pre-delete cache state leaves room for the loads;
* DELETE operations are implicit: they become ``hasred`` transitions at the
  end of the step they conclude.

Supersteps with fewer phases use fewer steps and unused trailing steps stay
empty (all operation variables zero, pebble states persisting), so any
schedule whose encoding fits the model's step budget can be encoded.  A
schedule that does not fit (or a model built without step merging / with the
asynchronous objective) yields ``None`` — callers fall back to the
objective-only warm start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.dag.graph import NodeId
from repro.model.pebbling import OpType
from repro.model.schedule import MbspSchedule
from repro.core.full_ilp import MbspIlpBuilder, MbspIlpVariables


@dataclass
class _SimStep:
    """One ILP time step of the encoding: per-processor operation sets plus
    the pebble configuration *after* the step."""

    computes: List[List[NodeId]]
    saves: List[List[NodeId]]
    loads: List[List[NodeId]]
    red_after: List[Set[NodeId]]
    blue_after: Set[NodeId]

    def is_compute(self) -> bool:
        return any(self.computes)

    def is_comm(self) -> bool:
        return any(self.saves) or any(self.loads)


@dataclass
class ScheduleEncoding:
    """A complete, feasibility-checked variable assignment for one model."""

    values: np.ndarray
    objective: float
    steps_used: int


def simulate_schedule_steps(
    builder: MbspIlpBuilder, schedule: MbspSchedule
) -> Optional[List["_SimStep"]]:
    """The ILP step sequence encoding ``schedule`` (None: unencodable).

    Callers that first size the model from the step count and then encode
    (the scheduler's warm-start path) pass the returned steps back into
    :func:`encode_schedule_solution` so the schedule is simulated once.
    """
    return _simulate(builder, schedule)


def required_encoding_steps(builder: MbspIlpBuilder, schedule: MbspSchedule) -> Optional[int]:
    """Number of ILP steps the encoding of ``schedule`` needs (None: unencodable)."""
    steps = _simulate(builder, schedule)
    return None if steps is None else len(steps)


def encode_schedule_solution(
    builder: MbspIlpBuilder,
    model,
    variables: MbspIlpVariables,
    schedule: MbspSchedule,
    steps: Optional[List["_SimStep"]] = None,
) -> Optional[ScheduleEncoding]:
    """Encode ``schedule`` as a full assignment of ``model``'s variables.

    Returns ``None`` when the schedule cannot be expressed in the model
    (asynchronous objective, merging disabled, recomputation in a
    no-recomputation model, more steps needed than the model has, or an
    operation the pebbling state cannot support).  A returned encoding has
    been verified against the compiled model, so backends will accept it.
    ``steps`` short-circuits the simulation when the caller already ran
    :func:`simulate_schedule_steps` for the same builder and schedule.
    """
    config = builder.config
    if not config.synchronous or not config.use_step_merging:
        return None
    if not config.allow_recomputation and schedule.recomputation_count() > 0:
        return None
    if steps is None:
        steps = _simulate(builder, schedule)
    if steps is None or len(steps) > variables.num_steps:
        return None
    values = _assign(builder, variables, steps, model.num_variables)
    compiled = model.compile()
    if not compiled.is_feasible(values):
        # defensive: an encoding bug must degrade to "no warm solution",
        # never to a backend rejecting (or worse, accepting) a bad incumbent
        return None
    return ScheduleEncoding(
        values=values,
        objective=compiled.objective_value(values),
        steps_used=len(steps),
    )


# ----------------------------------------------------------------------
# schedule simulation -> ILP step sequence
# ----------------------------------------------------------------------
def _simulate(builder: MbspIlpBuilder, schedule: MbspSchedule) -> Optional[List[_SimStep]]:
    dag = builder.dag
    P = builder.P
    r = builder.r
    computable = set(builder.computable_nodes())
    mu = dag.mu

    red: List[Set[NodeId]] = [set(builder.initial_red(p)) for p in range(P)]
    blue: Set[NodeId] = set(builder.initial_blue())
    steps: List[_SimStep] = []

    def emit(computes=None, saves=None, loads=None) -> _SimStep:
        step = _SimStep(
            computes=computes or [[] for _ in range(P)],
            saves=saves or [[] for _ in range(P)],
            loads=loads or [[] for _ in range(P)],
            red_after=[set(s) for s in red],
            blue_after=set(blue),
        )
        steps.append(step)
        return step

    for superstep in schedule.supersteps:
        # ---- compute phase: split into merged compute steps per processor
        segments: List[List[tuple]] = []  # per proc: [(computes, state_after)]
        for p in range(P):
            segs = _segment_compute_phase(
                superstep[p].compute_phase, red[p], r, mu, computable, dag
            )
            if segs is None:
                return None
            segments.append(segs)
        num_segments = max((len(s) for s in segments), default=0)
        for i in range(num_segments):
            computes = [[] for _ in range(P)]
            for p in range(P):
                if i < len(segments[p]):
                    seg_computes, state_after = segments[p][i]
                    computes[p] = seg_computes
                    red[p] = state_after
            emit(computes=computes)

        saves = [list(ps.save_phase) for ps in superstep.processor_steps]
        loads = [list(dict.fromkeys(ps.load_phase)) for ps in superstep.processor_steps]
        deletes = [set(ps.delete_phase) for ps in superstep.processor_steps]
        has_saves, has_loads = any(saves), any(loads)
        saved_now: Set[NodeId] = set()
        for p in range(P):
            for v in saves[p]:
                if v not in red[p]:
                    return None  # a save needs a red pebble at step start
                saved_now.add(v)

        # ---- try one merged communication step (save + load together)
        mergeable = has_saves and has_loads
        if mergeable:
            for p in range(P):
                if any(v not in blue for v in loads[p]):
                    mergeable = False  # load depends on a same-superstep save
                    break
                # constraint (7) charges the step's start state plus every
                # load (the delete phase frees nothing inside a merged step)
                if sum(mu(v) for v in red[p]) + sum(mu(v) for v in loads[p]) > r:
                    mergeable = False  # needs the delete phase to make room
                    break
        if mergeable:
            blue.update(saved_now)
            for p in range(P):
                red[p] = (red[p] - deletes[p]) | set(loads[p])
            emit(saves=saves, loads=loads)
            continue

        # ---- separate steps: saves first, then (post-delete-phase) loads
        if has_saves:
            blue.update(saved_now)
            for p in range(P):
                red[p] -= deletes[p]
            emit(saves=saves)
        elif any(deletes):
            # the delete phase must take effect before the loads; fold it
            # into the previous step when one exists, else spend an empty one
            if steps:
                for p in range(P):
                    red[p] -= deletes[p]
                    steps[-1].red_after[p] = set(red[p])
            else:
                for p in range(P):
                    red[p] -= deletes[p]
                emit()
        if has_loads:
            for p in range(P):
                for v in loads[p]:
                    if v not in blue:
                        return None  # a load needs a blue pebble
                if sum(mu(v) for v in red[p]) + sum(mu(v) for v in loads[p]) > r:
                    return None
                red[p] |= set(loads[p])
            emit(loads=loads)

    required = builder.required_blue() - builder.initial_blue()
    if not required <= blue:
        return None  # terminal configuration unreachable (constraint (10))
    return steps


def _segment_compute_phase(compute_phase, start_state, r, mu, computable, dag):
    """Split one compute phase into merged-step segments.

    Returns ``[(computed nodes, red state after segment), ...]`` or ``None``
    when the phase cannot be encoded (a source computed, a parent missing,
    or a single node that does not fit the cache next to the start state).
    """
    segments: List[tuple] = []
    state = set(start_state)

    seg_computes: List[NodeId] = []
    seg_deletes: Set[NodeId] = set()

    def seg_usage(extra: Sequence[NodeId] = ()) -> float:
        return (
            sum(mu(v) for v in state)
            + sum(mu(v) for v in seg_computes)
            + sum(mu(v) for v in extra)
        )

    def close_segment() -> None:
        nonlocal state, seg_computes, seg_deletes
        state = (state | set(seg_computes)) - seg_deletes
        segments.append((seg_computes, set(state)))
        seg_computes, seg_deletes = [], set()

    for op in compute_phase:
        v = op.node
        if op.op_type is OpType.DELETE:
            seg_deletes.add(v)
            continue
        if v not in computable:
            return None  # sources carry their value implicitly; no variable
        if v in seg_computes or v in seg_deletes:
            close_segment()
        if seg_usage((v,)) > r and (seg_computes or seg_deletes):
            close_segment()
        for u in dag.parents(v):
            if u not in state and u not in seg_computes:
                return None  # parent neither red at step start nor merged in
        if seg_usage((v,)) > r:
            return None  # not even alone: the model cannot hold this compute
        seg_computes.append(v)
    if seg_computes or seg_deletes:
        close_segment()
    return segments


# ----------------------------------------------------------------------
# step sequence -> variable assignment
# ----------------------------------------------------------------------
def _assign(
    builder: MbspIlpBuilder,
    var: MbspIlpVariables,
    steps: List[_SimStep],
    num_variables: int,
) -> np.ndarray:
    dag = builder.dag
    P = builder.P
    T = var.num_steps
    g = builder.g
    L = builder.L
    M = builder.big_m
    values = np.zeros(num_variables, dtype=float)

    def set_var(variable, value: float) -> None:
        values[variable.index] = value

    comp_cost = [[0.0] * P for _ in range(T)]
    comm_cost = [[0.0] * P for _ in range(T)]
    compphase = [0.0] * T
    commphase = [0.0] * T

    for t, step in enumerate(steps):
        for p in range(P):
            for v in step.computes[p]:
                set_var(var.compute[p, v, t], 1.0)
                comp_cost[t][p] += dag.omega(v)
            for v in step.saves[p]:
                set_var(var.save[p, v, t], 1.0)
                comm_cost[t][p] += g * dag.mu(v)
            for v in step.loads[p]:
                set_var(var.load[p, v, t], 1.0)
                comm_cost[t][p] += g * dag.mu(v)
            if (p, t) in var.compstep:
                set_var(var.compstep[p, t], 1.0 if step.computes[p] else 0.0)
                set_var(
                    var.commstep[p, t],
                    1.0 if (step.saves[p] or step.loads[p]) else 0.0,
                )
        compphase[t] = 1.0 if step.is_compute() else 0.0
        commphase[t] = 1.0 if step.is_comm() else 0.0

    # pebble states: steps beyond the encoding keep the final configuration
    final_red = steps[-1].red_after if steps else [set(builder.initial_red(p)) for p in range(P)]
    final_blue = steps[-1].blue_after if steps else builder.initial_blue()
    for t in range(1, T + 1):
        red_t = steps[t - 1].red_after if t - 1 < len(steps) else final_red
        blue_t = steps[t - 1].blue_after if t - 1 < len(steps) else final_blue
        for p in range(P):
            for v in red_t[p]:
                set_var(var.hasred[p, v, t], 1.0)
        for v in blue_t:
            if (v, t) in var.hasblue:
                set_var(var.hasblue[v, t], 1.0)

    # phase indicators and end markers
    for t in range(T):
        set_var(var.compphase[t], compphase[t])
        set_var(var.commphase[t], commphase[t])
        comp_end = compphase[t] and (t + 1 >= T or not compphase[t + 1])
        comm_end = commphase[t] and (t + 1 >= T or not commphase[t + 1])
        set_var(var.compends[t], 1.0 if comp_end else 0.0)
        set_var(var.commends[t], 1.0 if comm_end else 0.0)

    # running phase-cost accumulators and induced (charged) phase costs
    compuntil_prev = [0.0] * P
    communtil_prev = [0.0] * P
    for t in range(T):
        comm_end = values[var.commends[t].index] > 0.5
        comp_end = values[var.compends[t].index] > 0.5
        comp_until = [
            max(0.0, compuntil_prev[p] + comp_cost[t][p] - (M if comm_end else 0.0))
            for p in range(P)
        ]
        comm_until = [
            max(0.0, communtil_prev[p] + comm_cost[t][p] - (M if comp_end else 0.0))
            for p in range(P)
        ]
        for p in range(P):
            set_var(var.compuntil[p, t], comp_until[p])
            set_var(var.communtil[p, t], comm_until[p])
        set_var(
            var.compinduced[t],
            max(0.0, max(comp_until) - (0.0 if comp_end else M)),
        )
        set_var(
            var.comminduced[t],
            max(0.0, max(comm_until) - (0.0 if comm_end else M)),
        )
        compuntil_prev, communtil_prev = comp_until, comm_until
    return values
