"""The full ILP formulation of MBSP scheduling (Section 6.1, Appendix C.1).

The formulation follows the paper:

* binary variables ``compute[p, v, t]``, ``save[p, v, t]``, ``load[p, v, t]``
  describe the operations executed in (merged) time step ``t``;
* binary variables ``hasred[p, v, t]`` and ``hasblue[v, t]`` describe the
  pebble configuration at the *beginning* of step ``t`` (``t`` ranges from 0
  to ``T``, index ``T`` being the final configuration);
* the fundamental constraints (1)-(10) of Figure 3 tie operations to pebbles;
* with *step merging* (Section 6.2) a single step may hold several compute
  operations of one processor (when inputs and outputs fit in cache
  together), or several save/load operations;
* the synchronous cost is encoded through phase indicators
  (``compphase``/``commphase``), phase-end indicators and running phase-cost
  accumulators (Appendix C.1.2); the asynchronous cost through per-step
  finishing times and per-node availability times.

Boundary conditions (initial red/blue pebbles, values required in slow memory
at the end) are supported so the same builder serves both the full problem
and the sub-problems of the divide-and-conquer scheduler (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.exceptions import ConfigurationError
from repro.ilp import IlpModel, LinExpr, SolverOptions, Variable, lin_sum
from repro.model.instance import MbspInstance
from repro.model.pebbling import OpType
from repro.model.schedule import MbspSchedule


@dataclass
class BoundaryConditions:
    """Initial / terminal pebble requirements of a (sub-)problem.

    Attributes
    ----------
    initial_red:
        Per-processor sets of nodes that already carry a red pebble when the
        schedule starts (leftovers of a previous sub-schedule).
    initial_blue:
        Nodes that carry a blue pebble at the start *in addition to* the DAG's
        source nodes.
    required_blue:
        Nodes that must carry a blue pebble at the end *in addition to* the
        DAG's sink nodes (values consumed by later sub-problems).
    """

    initial_red: Dict[int, Set[NodeId]] = field(default_factory=dict)
    initial_blue: Set[NodeId] = field(default_factory=set)
    required_blue: Set[NodeId] = field(default_factory=set)


@dataclass
class MbspIlpConfig:
    """Configuration of the full MBSP ILP scheduler.

    Attributes
    ----------
    synchronous:
        Encode the synchronous (superstep) cost function; otherwise the
        asynchronous makespan.
    use_step_merging:
        Allow several operations of the same kind per (processor, step)
        (Section 6.2); strongly recommended, reduces the number of steps.
    allow_recomputation:
        When false, add ``sum_{p,t} compute[p,v,t] <= 1`` for every node.
    max_steps:
        Number of ILP time steps ``T``; ``None`` derives it from the initial
        schedule (its merged step count plus ``extra_steps``).
    extra_steps:
        Slack added to the derived number of steps.
    cutoff:
        Optional upper bound on the objective (cost of a known schedule);
        mirrors warm-starting the solver with the baseline.
    warm_start:
        How the scheduler warm-starts the solver from its incumbent schedule:
        ``"objective"`` (the default) passes only the incumbent *cost* (an
        objective cutoff row for HiGHS, an incumbent bound for branch and
        bound); ``"solution"`` additionally encodes the incumbent schedule
        into a full ILP variable assignment (:mod:`repro.core.encoding`) and
        hands it to the backend as ``SolverOptions.warm_start_solution`` —
        the branch-and-bound backend installs it as its initial incumbent.
        When the incumbent schedule cannot be encoded within the step budget
        the scheduler falls back to the objective-only warm start.
    solver_options / backend:
        Passed to :func:`repro.ilp.solve`.  ``backend=None`` selects the
        process default (``REPRO_ILP_BACKEND`` or ``"scipy"``); see
        :mod:`repro.ilp.backends` for the registered names (incl. ``"auto"``).
    """

    synchronous: bool = True
    use_step_merging: bool = True
    allow_recomputation: bool = True
    max_steps: Optional[int] = None
    extra_steps: int = 2
    cutoff: Optional[float] = None
    warm_start: str = "objective"
    solver_options: SolverOptions = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.solver_options is None:
            self.solver_options = SolverOptions(time_limit=60.0)
        if self.warm_start not in ("objective", "solution"):
            raise ConfigurationError(
                f"unknown warm_start mode {self.warm_start!r}; "
                f"expected 'objective' or 'solution'"
            )
        if self.max_steps is not None and self.max_steps < 1:
            raise ConfigurationError("max_steps must be at least 1")
        if self.extra_steps < 0:
            raise ConfigurationError("extra_steps must be non-negative")


@dataclass
class MbspIlpVariables:
    """Handles to the decision variables.

    Used in both directions: the schedule *extraction* reads operation
    variables out of a solution, and the schedule→solution *encoder*
    (:mod:`repro.core.encoding`) writes a full variable assignment for a
    known schedule, which is why the auxiliary step/phase/cost variables are
    recorded here as well.
    """

    num_steps: int
    compute: Dict[Tuple[int, NodeId, int], Variable]
    save: Dict[Tuple[int, NodeId, int], Variable]
    load: Dict[Tuple[int, NodeId, int], Variable]
    hasred: Dict[Tuple[int, NodeId, int], Variable]
    hasblue: Dict[Tuple[NodeId, int], Variable]
    compphase: List[Variable] = field(default_factory=list)
    commphase: List[Variable] = field(default_factory=list)
    compends: List[Variable] = field(default_factory=list)
    commends: List[Variable] = field(default_factory=list)
    # per-(processor, step) operation-kind indicators (step merging only)
    compstep: Dict[Tuple[int, int], Variable] = field(default_factory=dict)
    commstep: Dict[Tuple[int, int], Variable] = field(default_factory=dict)
    # synchronous cost machinery (Appendix C.1.2)
    compinduced: List[Variable] = field(default_factory=list)
    comminduced: List[Variable] = field(default_factory=list)
    compuntil: Dict[Tuple[int, int], Variable] = field(default_factory=dict)
    communtil: Dict[Tuple[int, int], Variable] = field(default_factory=dict)
    makespan: Optional[Variable] = None
    objective_expr: Optional[LinExpr] = None

    # ------------------------------------------------------------------
    # convenience accessors that treat fixed/omitted variables as constants
    # ------------------------------------------------------------------
    def compute_value(self, solution, p: int, v: NodeId, t: int) -> bool:
        var = self.compute.get((p, v, t))
        return bool(var is not None and solution.value(var) > 0.5)

    def save_value(self, solution, p: int, v: NodeId, t: int) -> bool:
        var = self.save.get((p, v, t))
        return bool(var is not None and solution.value(var) > 0.5)

    def load_value(self, solution, p: int, v: NodeId, t: int) -> bool:
        var = self.load.get((p, v, t))
        return bool(var is not None and solution.value(var) > 0.5)

    def hasred_value(self, solution, p: int, v: NodeId, t: int, initial: bool = False) -> bool:
        var = self.hasred.get((p, v, t))
        if var is None:
            return initial
        return bool(solution.value(var) > 0.5)

    def hasblue_value(self, solution, v: NodeId, t: int, initial: bool = False) -> bool:
        var = self.hasblue.get((v, t))
        if var is None:
            return initial
        return bool(solution.value(var) > 0.5)


class MbspIlpBuilder:
    """Builds the ILP model of an MBSP instance."""

    def __init__(
        self,
        instance: MbspInstance,
        config: Optional[MbspIlpConfig] = None,
        boundary: Optional[BoundaryConditions] = None,
    ) -> None:
        self.instance = instance
        self.config = config or MbspIlpConfig()
        self.boundary = boundary or BoundaryConditions()
        self.dag = instance.dag
        self.P = instance.num_processors
        self.g = instance.g
        self.L = instance.L
        self.r = instance.cache_size

        # the big-M constant of Appendix C.1.2; it only needs to dominate the
        # largest possible accumulated phase cost / finishing time of a single
        # processor, so the total work plus total I/O volume (plus one L) is
        # sufficient — a tight M keeps the LP relaxation strong
        self.big_m = (
            sum(self.dag.omega(v) + 2.0 * self.g * self.dag.mu(v) for v in self.dag.nodes)
            + self.L
            + 1.0
        )

    # ------------------------------------------------------------------
    def initial_red(self, p: int) -> Set[NodeId]:
        return set(self.boundary.initial_red.get(p, set()))

    def initial_blue(self) -> Set[NodeId]:
        return set(self.dag.sources()) | set(self.boundary.initial_blue)

    def required_blue(self) -> Set[NodeId]:
        return set(self.dag.sinks()) | set(self.boundary.required_blue)

    def computable_nodes(self) -> List[NodeId]:
        return [v for v in self.dag.nodes if not self.dag.is_source(v)]

    # ------------------------------------------------------------------
    def build(self, num_steps: int) -> Tuple[IlpModel, MbspIlpVariables]:
        """Construct the model with ``num_steps`` (merged) time steps."""
        if num_steps < 1:
            raise ConfigurationError("the ILP needs at least one time step")
        model = IlpModel(f"mbsp_ilp_{self.instance.name}")
        variables = self._create_variables(model, num_steps)
        self._add_fundamental_constraints(model, variables)
        if not self.config.allow_recomputation:
            self._add_no_recomputation_constraints(model, variables)
        if self.config.synchronous:
            objective = self._add_synchronous_cost(model, variables)
        else:
            objective = self._add_asynchronous_cost(model, variables)
        variables.objective_expr = objective
        if self.config.cutoff is not None:
            model.add_constraint(objective <= float(self.config.cutoff) + 1e-6)
        model.minimize(objective)
        return model, variables

    # ------------------------------------------------------------------
    # variable creation
    # ------------------------------------------------------------------
    def _create_variables(self, model: IlpModel, T: int) -> MbspIlpVariables:
        dag = self.dag
        compute: Dict[Tuple[int, NodeId, int], Variable] = {}
        save: Dict[Tuple[int, NodeId, int], Variable] = {}
        load: Dict[Tuple[int, NodeId, int], Variable] = {}
        hasred: Dict[Tuple[int, NodeId, int], Variable] = {}
        hasblue: Dict[Tuple[NodeId, int], Variable] = {}

        computable = set(self.computable_nodes())
        init_blue = self.initial_blue()

        for v in dag.nodes:
            for t in range(T):
                for p in range(self.P):
                    if v in computable:
                        compute[p, v, t] = model.add_binary(f"compute_{p}_{v}_{t}")
                    save[p, v, t] = model.add_binary(f"save_{p}_{v}_{t}")
                    load[p, v, t] = model.add_binary(f"load_{p}_{v}_{t}")
            # pebble-state variables for t = 1 .. T (index 0 is the fixed
            # initial configuration and therefore not represented by
            # variables; the accessors treat missing entries as constants)
            for t in range(1, T + 1):
                for p in range(self.P):
                    hasred[p, v, t] = model.add_binary(f"hasred_{p}_{v}_{t}")
                if v in init_blue:
                    # once a value is in slow memory it can stay there forever
                    # at no cost, so its blue indicator is simply fixed to 1
                    continue
                hasblue[v, t] = model.add_binary(f"hasblue_{v}_{t}")
        return MbspIlpVariables(
            num_steps=T,
            compute=compute,
            save=save,
            load=load,
            hasred=hasred,
            hasblue=hasblue,
        )

    # expression helpers treating fixed states as constants ---------------
    def _hasred_expr(self, var: MbspIlpVariables, p: int, v: NodeId, t: int):
        if t == 0:
            return 1.0 if v in self.initial_red(p) else 0.0
        return var.hasred[p, v, t]

    def _hasblue_expr(self, var: MbspIlpVariables, v: NodeId, t: int):
        if v in self.initial_blue():
            return 1.0
        if t == 0:
            return 0.0
        return var.hasblue[v, t]

    # ------------------------------------------------------------------
    # fundamental constraints (Figure 3)
    # ------------------------------------------------------------------
    def _add_fundamental_constraints(self, model: IlpModel, var: MbspIlpVariables) -> None:
        dag = self.dag
        T = var.num_steps
        n = dag.num_nodes
        computable = set(self.computable_nodes())
        merging = self.config.use_step_merging

        for t in range(T):
            for p in range(self.P):
                for v in dag.nodes:
                    # (1) a load requires a blue pebble
                    blue = self._hasblue_expr(var, v, t)
                    if isinstance(blue, float):
                        if blue == 0.0:
                            model.add_constraint(var.load[p, v, t] <= 0.0)
                    else:
                        model.add_constraint(var.load[p, v, t] <= blue)
                    # (2) a save requires a red pebble of the same processor
                    red = self._hasred_expr(var, p, v, t)
                    if isinstance(red, float):
                        if red == 0.0:
                            model.add_constraint(var.save[p, v, t] <= 0.0)
                    else:
                        model.add_constraint(var.save[p, v, t] <= red)
                # (3) computes require parents in cache (or computed in the
                # same merged step)
                for v in computable:
                    for u in dag.parents(v):
                        red_u = self._hasred_expr(var, p, u, t)
                        rhs = LinExpr()
                        if isinstance(red_u, float):
                            rhs.add_constant(red_u)
                        else:
                            rhs.add_term(red_u, 1.0)
                        if merging and (p, u, t) in var.compute:
                            rhs.add_term(var.compute[p, u, t], 1.0)
                        model.add_constraint(var.compute[p, v, t] <= rhs)

        # (4) red pebbles can only persist, be computed, or be loaded
        for t in range(1, T + 1):
            for p in range(self.P):
                for v in dag.nodes:
                    rhs = LinExpr()
                    prev_red = self._hasred_expr(var, p, v, t - 1)
                    if isinstance(prev_red, float):
                        rhs.add_constant(prev_red)
                    else:
                        rhs.add_term(prev_red, 1.0)
                    if (p, v, t - 1) in var.compute:
                        rhs.add_term(var.compute[p, v, t - 1], 1.0)
                    rhs.add_term(var.load[p, v, t - 1], 1.0)
                    model.add_constraint(var.hasred[p, v, t] <= rhs)

        # (5) blue pebbles can only persist or be saved
        for t in range(1, T + 1):
            for v in dag.nodes:
                if (v, t) not in var.hasblue:
                    continue  # fixed to 1 (initially blue)
                rhs = LinExpr()
                prev_blue = self._hasblue_expr(var, v, t - 1)
                if isinstance(prev_blue, float):
                    rhs.add_constant(prev_blue)
                else:
                    rhs.add_term(prev_blue, 1.0)
                for p in range(self.P):
                    rhs.add_term(var.save[p, v, t - 1], 1.0)
                model.add_constraint(var.hasblue[v, t] <= rhs)

        # (6) one kind of operation per processor and step
        if merging:
            for t in range(T):
                for p in range(self.P):
                    compstep = model.add_binary(f"compstep_{p}_{t}")
                    commstep = model.add_binary(f"commstep_{p}_{t}")
                    var.compstep[p, t] = compstep
                    var.commstep[p, t] = commstep
                    model.add_constraint(
                        lin_sum(var.compute[p, v, t] for v in computable)
                        <= n * compstep
                    )
                    model.add_constraint(
                        lin_sum(
                            var.save[p, v, t] + var.load[p, v, t] for v in dag.nodes
                        )
                        <= 2 * n * commstep
                    )
                    model.add_constraint(compstep + commstep <= 1)
        else:
            for t in range(T):
                for p in range(self.P):
                    terms = [var.save[p, v, t] + var.load[p, v, t] for v in dag.nodes]
                    terms.extend(var.compute[p, v, t] for v in computable)
                    model.add_constraint(lin_sum(terms) <= 1)

        # (7) the memory bound; with merging, outputs produced in the step
        # must fit together with the cached inputs (Section 6.2)
        for p in range(self.P):
            for t in range(1, T + 1):
                model.add_constraint(
                    lin_sum(
                        self.dag.mu(v) * var.hasred[p, v, t] for v in dag.nodes
                    )
                    <= self.r
                )
            for t in range(T):
                usage = LinExpr()
                for v in dag.nodes:
                    red = self._hasred_expr(var, p, v, t)
                    if isinstance(red, float):
                        usage.add_constant(self.dag.mu(v) * red)
                    else:
                        usage.add_term(red, self.dag.mu(v))
                    if (p, v, t) in var.compute:
                        usage.add_term(var.compute[p, v, t], self.dag.mu(v))
                    usage.add_term(var.load[p, v, t], self.dag.mu(v))
                model.add_constraint(usage <= self.r)

        # (8), (9): the initial configuration is already encoded as constants.
        # (10): terminal configuration — required values in slow memory.
        for v in self.required_blue():
            if v in self.initial_blue():
                continue
            model.add_constraint(var.hasblue[v, T] >= 1.0)

    # ------------------------------------------------------------------
    def _add_no_recomputation_constraints(self, model: IlpModel, var: MbspIlpVariables) -> None:
        T = var.num_steps
        for v in self.computable_nodes():
            model.add_constraint(
                lin_sum(var.compute[p, v, t] for p in range(self.P) for t in range(T))
                <= 1
            )

    # ------------------------------------------------------------------
    # synchronous cost (Appendix C.1.2)
    # ------------------------------------------------------------------
    def _add_synchronous_cost(self, model: IlpModel, var: MbspIlpVariables) -> LinExpr:
        dag = self.dag
        T = var.num_steps
        n = dag.num_nodes
        computable = set(self.computable_nodes())
        M = self.big_m

        compphase = [model.add_binary(f"compphase_{t}") for t in range(T)]
        commphase = [model.add_binary(f"commphase_{t}") for t in range(T)]
        compends = [model.add_binary(f"compends_{t}") for t in range(T)]
        commends = [model.add_binary(f"commends_{t}") for t in range(T)]
        var.compphase, var.commphase = compphase, commphase
        var.compends, var.commends = compends, commends

        for t in range(T):
            model.add_constraint(
                lin_sum(
                    var.compute[p, v, t] for p in range(self.P) for v in computable
                )
                <= self.P * n * compphase[t]
            )
            model.add_constraint(
                lin_sum(
                    var.save[p, v, t] + var.load[p, v, t]
                    for p in range(self.P)
                    for v in dag.nodes
                )
                <= 2 * self.P * n * commphase[t]
            )
            model.add_constraint(compphase[t] + commphase[t] <= 1)
            # phase-end indicators
            model.add_constraint(compends[t] <= compphase[t])
            model.add_constraint(commends[t] <= commphase[t])
            if t + 1 < T:
                model.add_constraint(compends[t] >= compphase[t] - compphase[t + 1])
                model.add_constraint(commends[t] >= commphase[t] - commphase[t + 1])
            else:
                model.add_constraint(compends[t] >= compphase[t])
                model.add_constraint(commends[t] >= commphase[t])

        compinduced = [model.add_continuous(f"compinduced_{t}") for t in range(T)]
        comminduced = [model.add_continuous(f"comminduced_{t}") for t in range(T)]
        var.compinduced, var.comminduced = compinduced, comminduced

        for p in range(self.P):
            compuntil_prev: Optional[Variable] = None
            communtil_prev: Optional[Variable] = None
            for t in range(T):
                compuntil = model.add_continuous(f"compuntil_{p}_{t}")
                communtil = model.add_continuous(f"communtil_{p}_{t}")
                var.compuntil[p, t] = compuntil
                var.communtil[p, t] = communtil
                comp_cost = lin_sum(
                    dag.omega(v) * var.compute[p, v, t] for v in computable
                )
                comm_cost = lin_sum(
                    self.g * dag.mu(v) * (var.save[p, v, t] + var.load[p, v, t])
                    for v in dag.nodes
                )
                comp_rhs = comp_cost - M * commends[t]
                comm_rhs = comm_cost - M * compends[t]
                if compuntil_prev is not None:
                    comp_rhs = comp_rhs + compuntil_prev
                if communtil_prev is not None:
                    comm_rhs = comm_rhs + communtil_prev
                model.add_constraint(compuntil >= comp_rhs)
                model.add_constraint(communtil >= comm_rhs)
                # the accumulated phase cost is charged at the end of a phase
                model.add_constraint(
                    compinduced[t] >= compuntil - M * (1.0 - compends[t])
                )
                model.add_constraint(
                    comminduced[t] >= communtil - M * (1.0 - commends[t])
                )
                compuntil_prev, communtil_prev = compuntil, communtil

        objective = lin_sum(compinduced) + lin_sum(comminduced) + self.L * lin_sum(commends)
        return objective

    # ------------------------------------------------------------------
    # asynchronous cost (Appendix C.1.2)
    # ------------------------------------------------------------------
    def _add_asynchronous_cost(self, model: IlpModel, var: MbspIlpVariables) -> LinExpr:
        dag = self.dag
        T = var.num_steps
        computable = set(self.computable_nodes())
        M = self.big_m

        finishtime = {
            (p, t): model.add_continuous(f"finishtime_{p}_{t}")
            for p in range(self.P)
            for t in range(T)
        }
        getsblue = {v: model.add_continuous(f"getsblue_{v}") for v in dag.nodes}
        makespan = model.add_continuous("makespan")
        var.makespan = makespan

        for p in range(self.P):
            for t in range(T):
                step_cost = LinExpr()
                for v in dag.nodes:
                    if (p, v, t) in var.compute:
                        step_cost.add_term(var.compute[p, v, t], dag.omega(v))
                    step_cost.add_term(var.save[p, v, t], self.g * dag.mu(v))
                    step_cost.add_term(var.load[p, v, t], self.g * dag.mu(v))
                if t == 0:
                    model.add_constraint(finishtime[p, t] >= step_cost)
                else:
                    model.add_constraint(
                        finishtime[p, t] >= finishtime[p, t - 1] + step_cost
                    )
                # a save defines when the value becomes available in slow memory
                for v in dag.nodes:
                    model.add_constraint(
                        getsblue[v]
                        >= finishtime[p, t] - M * (1.0 - var.save[p, v, t])
                    )
                # a load cannot finish before the value is available plus the
                # duration of the whole (merged) load operation of this step
                load_cost = lin_sum(
                    self.g * dag.mu(u) * var.load[p, u, t] for u in dag.nodes
                )
                for v in dag.nodes:
                    model.add_constraint(
                        finishtime[p, t]
                        >= getsblue[v] + load_cost - M * (1.0 - var.load[p, v, t])
                    )
            model.add_constraint(makespan >= finishtime[p, T - 1])
        return LinExpr({makespan.index: 1.0}, 0.0)
