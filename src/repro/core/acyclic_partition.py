"""Acyclic DAG partitioning (the first step of the divide-and-conquer ILP).

The divide-and-conquer scheduler recursively splits the DAG into two parts
such that the quotient graph stays acyclic (all edges between the parts point
from part 0 to part 1), both parts are reasonably balanced, and the number of
cut edges is small.  Following Section 6.3 the bipartitioning problem itself
is expressed as a small ILP; a topological-order sweep is used as a fallback
(and as the initial incumbent bound) when the solver finds nothing better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.exceptions import ConfigurationError
from repro.ilp import IlpModel, SolverOptions, lin_sum, solve


@dataclass
class PartitionConfig:
    """Configuration of the recursive acyclic partitioner.

    Attributes
    ----------
    max_part_size:
        Recursion stops once every part has at most this many nodes (the
        paper uses 60).
    balance_fraction:
        Each side of a bipartition must contain at least this fraction of the
        nodes (the paper uses 1/3).
    solver_options:
        Options for the bipartitioning ILP (these ILPs are tiny and usually
        solve to optimality in well under a second).
    use_ilp:
        Disable to use only the topological sweep heuristic.
    backend:
        ILP backend name (``None`` = process default, see
        :mod:`repro.ilp.backends`).
    """

    max_part_size: int = 60
    balance_fraction: float = 1.0 / 3.0
    solver_options: SolverOptions = None
    use_ilp: bool = True
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.solver_options is None:
            self.solver_options = SolverOptions(time_limit=5.0)
        if not 0 < self.balance_fraction <= 0.5:
            raise ConfigurationError("balance_fraction must lie in (0, 0.5]")
        if self.max_part_size < 2:
            raise ConfigurationError("max_part_size must be at least 2")


def topological_sweep_bipartition(dag: ComputationalDag, balance_fraction: float) -> Dict[NodeId, int]:
    """Heuristic acyclic bipartition: cut a topological order at the best point.

    Every prefix of a topological order is a valid part 0; the sweep evaluates
    all balanced cut positions and returns the one with the fewest cut edges.
    """
    order = dag.topological_order()
    n = len(order)
    position = {v: i for i, v in enumerate(order)}
    lo = max(1, int(balance_fraction * n))
    hi = n - lo
    if lo > hi:
        lo = hi = n // 2
    # prefix cut count: edges (u, v) with position[u] < cut <= position[v]
    best_cut, best_pos = None, lo
    for cut in range(lo, hi + 1):
        cut_edges = sum(
            1 for u, v in dag.edges() if position[u] < cut <= position[v]
        )
        if best_cut is None or cut_edges < best_cut:
            best_cut, best_pos = cut_edges, cut
    return {v: (0 if position[v] < best_pos else 1) for v in order}


def ilp_acyclic_bipartition(
    dag: ComputationalDag,
    config: Optional[PartitionConfig] = None,
) -> Dict[NodeId, int]:
    """Optimal (cut-minimising) acyclic bipartition via a small ILP.

    Variables ``y_v`` place node ``v`` in part 0 or 1; acyclicity of the
    quotient is enforced by ``y_u <= y_v`` for every edge ``u -> v``; the
    objective counts cut edges.  Falls back to the topological sweep if the
    solver produces nothing usable.
    """
    config = config or PartitionConfig()
    fallback = topological_sweep_bipartition(dag, config.balance_fraction)
    if not config.use_ilp or dag.num_nodes < 4:
        return fallback

    n = dag.num_nodes
    lo = max(1, int(config.balance_fraction * n))
    hi = n - lo
    if lo > hi:
        return fallback

    model = IlpModel(f"acyclic_bipartition_{dag.name}")
    y = {v: model.add_binary(f"y_{v}") for v in dag.nodes}
    cut = {}
    for u, v in dag.edges():
        # quotient acyclicity: edges may only go from part 0 to part 1
        model.add_constraint(y[u] <= y[v])
        z = model.add_binary(f"cut_{u}_{v}")
        model.add_constraint(z >= y[v] - y[u])
        cut[u, v] = z
    size_part1 = lin_sum(y.values())
    model.add_constraint(size_part1 >= lo)
    model.add_constraint(size_part1 <= hi)
    model.minimize(lin_sum(cut.values()))

    solution = solve(model, config.solver_options, backend=config.backend)
    if not solution.has_solution:
        return fallback
    parts = {v: (1 if solution.value(y[v]) > 0.5 else 0) for v in dag.nodes}
    # sanity: both sides non-empty (numerical edge cases fall back)
    if len({p for p in parts.values()}) < 2:
        return fallback
    return parts


@dataclass
class RecursivePartition:
    """Result of the recursive partitioner."""

    parts: Dict[NodeId, int]
    num_parts: int

    def nodes_of(self, part: int) -> List[NodeId]:
        return [v for v, p in self.parts.items() if p == part]

    def part_sizes(self) -> List[int]:
        sizes = [0] * self.num_parts
        for p in self.parts.values():
            sizes[p] += 1
        return sizes


def recursive_acyclic_partition(
    dag: ComputationalDag,
    config: Optional[PartitionConfig] = None,
) -> RecursivePartition:
    """Recursively bipartition ``dag`` until all parts fit ``max_part_size``.

    Part ids are renumbered so that they form a topological order of the
    quotient graph (part ``i`` never depends on part ``j > i``).
    """
    config = config or PartitionConfig()

    def split(nodes: List[NodeId]) -> List[List[NodeId]]:
        if len(nodes) <= config.max_part_size:
            return [nodes]
        sub = dag.induced_subgraph(nodes)
        parts = ilp_acyclic_bipartition(sub, config)
        part0 = [v for v in nodes if parts[v] == 0]
        part1 = [v for v in nodes if parts[v] == 1]
        if not part0 or not part1:
            return [nodes]
        return split(part0) + split(part1)

    groups = split(list(dag.nodes))
    # Every recursion step splits a node set into a (predecessor, successor)
    # pair, so the concatenation order of the groups is already a topological
    # order of the quotient.  Renumber the groups through an explicit
    # topological sort of the quotient graph to make this robust even if a
    # bipartitioning backend ever returned a non-conforming split.
    preliminary: Dict[NodeId, int] = {}
    for idx, group in enumerate(groups):
        for v in group:
            preliminary[v] = idx
    quotient = ComputationalDag(name=f"{dag.name}_parts")
    for idx in range(len(groups)):
        quotient.add_node(idx)
    for u, v in dag.edges():
        if preliminary[u] != preliminary[v]:
            quotient.add_edge(preliminary[u], preliminary[v])
    order = quotient.topological_order()
    renumber = {old: new for new, old in enumerate(order)}
    parts = {v: renumber[preliminary[v]] for v in dag.nodes}
    return RecursivePartition(parts=parts, num_parts=len(groups))
