"""Top-level MBSP scheduling API.

:class:`MbspIlpScheduler` implements the paper's holistic scheduler: it takes
a two-stage baseline as the initial solution, builds the full ILP formulation
and solves it warm-started from the baseline cost
(``SolverOptions.warm_start_objective``: an objective cutoff row for the
HiGHS backend, an initial incumbent bound for branch and bound), extracts
the schedule and keeps whichever of the two schedules is cheaper under the
exact cost evaluator.

:func:`schedule_mbsp` is the convenience entry point used by the examples and
the experiment harness; it dispatches between the baselines, the full ILP and
the divide-and-conquer ILP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.exceptions import ConfigurationError, ScheduleError
from repro.ilp.solution import SolutionStatus
from repro.ilp import solve
from repro.model.cost import schedule_cost
from repro.model.instance import MbspInstance
from repro.model.schedule import MbspSchedule
from repro.model.validation import validate_schedule
from repro.core.extraction import extract_schedule
from repro.core.full_ilp import BoundaryConditions, MbspIlpBuilder, MbspIlpConfig
from repro.core.two_stage import TwoStageResult, baseline_schedule, run_two_stage


@dataclass
class MbspSchedulingResult:
    """Outcome of the holistic ILP scheduler on one instance."""

    instance: MbspInstance
    baseline: TwoStageResult
    ilp_schedule: Optional[MbspSchedule]
    ilp_cost: Optional[float]
    best_schedule: MbspSchedule
    best_cost: float
    solver_status: str
    solve_time: float
    #: warm start actually handed to the solver: ``"objective"`` (incumbent
    #: cost only) or ``"solution"`` (full encoded variable assignment); the
    #: configured ``warm_start="solution"`` degrades to ``"objective"`` when
    #: the incumbent schedule does not fit the model's step budget.
    warm_start: str = "objective"
    #: the backend's free-form result message (e.g. branch and bound notes
    #: ``"warm-start solution proven optimal"`` when the installed incumbent
    #: survived the search) — diagnostics, not part of any fingerprint.
    solver_message: str = ""

    @property
    def improvement_ratio(self) -> float:
        """Best cost divided by the baseline cost (<= 1 means improvement)."""
        if self.baseline.cost == 0:
            return 1.0
        return self.best_cost / self.baseline.cost


#: Default cap on the derived ILP step budget ``T``: the variable count grows
#: linearly in ``T`` and compact models find far better incumbents within a
#: limited solver budget.  Shared by :func:`estimate_time_steps` and the
#: warm-start-solution budget widening in :class:`MbspIlpScheduler`.
DEFAULT_STEP_CAP = 12


def estimate_time_steps(
    baseline: MbspSchedule,
    extra_steps: int = 2,
    step_cap: int = DEFAULT_STEP_CAP,
) -> int:
    """Derive the ILP step budget ``T`` from an initial MBSP schedule.

    Every superstep of the initial schedule needs at most one merged compute
    step and two merged communication steps, so ``2 * supersteps + extra``
    steps are normally enough to express a schedule at least as refined as
    the baseline.  The budget is additionally capped (default 12 steps):
    the number of ILP variables grows linearly in ``T`` and, empirically, a
    tighter step budget lets the MILP solver find far better incumbents
    within a limited time budget — good schedules are much more compact than
    the two-stage baseline.  The cap can be lifted through
    ``MbspIlpConfig.max_steps``.
    """
    derived = 2 * baseline.num_supersteps + extra_steps
    return max(4, min(derived, step_cap))


class MbspIlpScheduler:
    """The holistic ILP-based MBSP scheduler (Section 6)."""

    def __init__(self, config: Optional[MbspIlpConfig] = None) -> None:
        self.config = config or MbspIlpConfig()

    # ------------------------------------------------------------------
    def schedule(
        self,
        instance: MbspInstance,
        baseline: Optional[TwoStageResult] = None,
        boundary: Optional[BoundaryConditions] = None,
    ) -> MbspSchedulingResult:
        """Schedule ``instance``; never returns a result worse than the baseline."""
        instance.require_feasible()
        config = self.config
        if baseline is None:
            baseline = baseline_schedule(instance, synchronous=config.synchronous)

        num_steps = config.max_steps or estimate_time_steps(
            baseline.mbsp_schedule, config.extra_steps
        )

        builder = MbspIlpBuilder(
            instance,
            config=MbspIlpConfig(
                synchronous=config.synchronous,
                use_step_merging=config.use_step_merging,
                allow_recomputation=config.allow_recomputation,
                max_steps=num_steps,
                extra_steps=config.extra_steps,
                # an explicitly configured cutoff is encoded in the model
                # itself; the baseline incumbent travels as a solver-level
                # warm start instead (below), so the model never carries two
                # copies of the same objective bound
                cutoff=config.cutoff,
                warm_start=config.warm_start,
                solver_options=config.solver_options,
                backend=config.backend,
            ),
            boundary=boundary,
        )
        encoding_steps = None
        if config.warm_start == "solution" and config.max_steps is None:
            # the incumbent encoding typically needs up to ~3 steps per
            # superstep (compute / save / load); widen the derived budget up
            # to the standard cap so the encoding fits whenever possible —
            # never beyond it, so the model stays solver-friendly
            from repro.core.encoding import simulate_schedule_steps

            encoding_steps = simulate_schedule_steps(builder, baseline.mbsp_schedule)
            if (
                encoding_steps is not None
                and num_steps < len(encoding_steps) <= DEFAULT_STEP_CAP
            ):
                num_steps = len(encoding_steps)
        model, variables = builder.build(num_steps)
        solver_options = config.solver_options
        warm_start_used = "objective"
        if (
            solver_options is not None
            and solver_options.warm_start_objective is None
            and config.cutoff is None
        ):
            # warm start from the two-stage incumbent: the scipy backend gets
            # an objective cutoff row, branch and bound an incumbent bound —
            # the solver only ever searches for strict improvements
            solver_options = replace(
                solver_options, warm_start_objective=float(baseline.cost)
            )
        if config.warm_start == "solution" and solver_options is not None:
            # additionally encode the incumbent schedule into a full variable
            # assignment: branch and bound installs it as its initial
            # incumbent (and returns it when the tree cannot improve), the
            # scipy backend derives an objective cutoff row from it
            from repro.core.encoding import encode_schedule_solution

            encoding = encode_schedule_solution(
                builder, model, variables, baseline.mbsp_schedule,
                steps=encoding_steps,
            )
            if encoding is not None:
                solver_options = replace(
                    solver_options, warm_start_solution=encoding.values
                )
                warm_start_used = "solution"
        solution = solve(model, solver_options, backend=config.backend)

        ilp_schedule: Optional[MbspSchedule] = None
        ilp_cost: Optional[float] = None
        if solution.has_solution:
            try:
                candidate = extract_schedule(instance, variables, solution, boundary)
                validate_schedule(candidate, require_all_computed=False)
                ilp_schedule = candidate
                ilp_cost = schedule_cost(candidate, synchronous=config.synchronous)
            except (ScheduleError, KeyError, IndexError):
                # an unusable solver solution: extraction indexes the
                # variable/solution arrays (KeyError/IndexError on partial
                # assignments) and validation raises InvalidScheduleError;
                # the warm-start contract then keeps the baseline schedule
                ilp_schedule = None
                ilp_cost = None

        if ilp_cost is not None and ilp_cost < baseline.cost:
            best_schedule, best_cost = ilp_schedule, ilp_cost
        else:
            # warm-start semantics: the initial (baseline) solution is kept
            # whenever the solver cannot improve on it within its budget
            best_schedule, best_cost = baseline.mbsp_schedule, baseline.cost
        return MbspSchedulingResult(
            instance=instance,
            baseline=baseline,
            ilp_schedule=ilp_schedule,
            ilp_cost=ilp_cost,
            best_schedule=best_schedule,
            best_cost=best_cost,
            solver_status=solution.status.value,
            solve_time=solution.solve_time,
            warm_start=warm_start_used,
            solver_message=solution.message,
        )


def schedule_mbsp(
    instance: MbspInstance,
    method: str = "ilp",
    config: Optional[MbspIlpConfig] = None,
    synchronous: bool = True,
    seed: int = 0,
) -> MbspSchedule:
    """High-level entry point returning an MBSP schedule for ``instance``.

    Parameters
    ----------
    method:
        ``"baseline"`` (BSPg + clairvoyant), ``"practical"`` (Cilk + LRU),
        ``"ilp"`` (full ILP initialised with the baseline) or
        ``"divide-and-conquer"`` (the partition-based ILP for larger DAGs).
    """
    key = method.lower()
    if key in ("baseline", "two-stage", "bspg"):
        return baseline_schedule(instance, synchronous=synchronous, seed=seed).mbsp_schedule
    if key in ("practical", "cilk"):
        return run_two_stage(
            instance, scheduler="cilk", policy="lru", synchronous=synchronous, seed=seed
        ).mbsp_schedule
    if key == "ilp":
        scheduler_config = config or MbspIlpConfig(synchronous=synchronous)
        result = MbspIlpScheduler(scheduler_config).schedule(instance)
        return result.best_schedule
    if key in ("divide-and-conquer", "dac", "divide_and_conquer"):
        from repro.core.divide_conquer import DivideAndConquerScheduler

        scheduler_config = config or MbspIlpConfig(synchronous=synchronous)
        return DivideAndConquerScheduler(scheduler_config).schedule(instance).best_schedule
    raise ConfigurationError(
        f"unknown scheduling method {method!r}; available: baseline, practical, "
        f"ilp, divide-and-conquer"
    )
