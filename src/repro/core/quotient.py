"""Quotient graphs of partitioned DAGs and the high-level scheduling plan.

Step 2 of the divide-and-conquer scheduler (Section 6.3 / Appendix C.2):
given an acyclic partition, the parts are contracted into a quotient DAG
(node weights are the summed compute/memory weights of the part) and a
high-level plan decides which subset of processors works on each part and in
which order the sub-problems are scheduled.

The plan follows the spirit of the adjusted BSPg heuristic described in the
paper: parts are processed level by level in topological order of the
quotient; parts that are independent of each other (same level) split the
available processors proportionally to their work, while a part that is alone
in its level receives all processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.core.acyclic_partition import RecursivePartition


def build_quotient_dag(dag: ComputationalDag, partition: RecursivePartition) -> ComputationalDag:
    """Contract each part into a single node; weights are summed per part.

    Raises if the quotient contains a cycle (i.e. the partition is not
    acyclic), which would make the divide-and-conquer order ill-defined.
    """
    quotient = ComputationalDag(name=f"{dag.name}_quotient")
    sums: Dict[int, Tuple[float, float]] = {}
    for v in dag.nodes:
        part = partition.parts[v]
        omega, mu = sums.get(part, (0.0, 0.0))
        sums[part] = (omega + dag.omega(v), mu + dag.mu(v))
    for part in range(partition.num_parts):
        omega, mu = sums.get(part, (0.0, 0.0))
        quotient.add_node(part, omega=omega, mu=mu)
    for u, v in dag.edges():
        pu, pv = partition.parts[u], partition.parts[v]
        if pu != pv:
            quotient.add_edge(pu, pv)
    # topological_order raises CycleError if the partition was not acyclic
    quotient.topological_order()
    return quotient


@dataclass
class SubproblemPlan:
    """Which processors work on one part, and which parts must finish first."""

    part: int
    processors: List[int]
    predecessors: List[int] = field(default_factory=list)


def plan_subproblems(
    quotient: ComputationalDag,
    num_processors: int,
) -> List[SubproblemPlan]:
    """Assign processor subsets to parts, level by level.

    Parts within one level of the quotient DAG are mutually independent, so
    they divide the ``num_processors`` processors proportionally to their
    compute weight (each part receives at least one processor).  The returned
    plans are ordered topologically (level by level).
    """
    from repro.dag.analysis import node_levels

    levels = node_levels(quotient)
    by_level: Dict[int, List[int]] = {}
    for part, level in levels.items():
        by_level.setdefault(level, []).append(part)

    plans: List[SubproblemPlan] = []
    for level in sorted(by_level):
        parts = sorted(by_level[level], key=lambda part: -quotient.omega(part))
        if len(parts) == 1 or num_processors <= len(parts):
            # one part per "slot": a lone part gets everything; when there are
            # more parts than processors, give one processor each round-robin
            if len(parts) == 1:
                allocations = [list(range(num_processors))]
            else:
                allocations = [[i % num_processors] for i in range(len(parts))]
        else:
            total = sum(max(quotient.omega(part), 1e-9) for part in parts)
            shares = [
                max(1, int(round(num_processors * max(quotient.omega(part), 1e-9) / total)))
                for part in parts
            ]
            # fix rounding so the shares sum to exactly num_processors
            while sum(shares) > num_processors:
                shares[shares.index(max(shares))] -= 1
            while sum(shares) < num_processors:
                shares[shares.index(min(shares))] += 1
            allocations = []
            next_proc = 0
            for share in shares:
                allocations.append(list(range(next_proc, next_proc + share)))
                next_proc += share
        for part, procs in zip(parts, allocations):
            plans.append(
                SubproblemPlan(
                    part=part,
                    processors=procs,
                    predecessors=sorted(quotient.parents(part)),
                )
            )
    return plans
