"""The paper's core contribution: holistic ILP-based MBSP scheduling."""

from repro.core.full_ilp import (
    BoundaryConditions,
    MbspIlpBuilder,
    MbspIlpConfig,
    MbspIlpVariables,
)
from repro.core.extraction import extract_schedule
from repro.core.two_stage import (
    TwoStageResult,
    baseline_schedule,
    practical_baseline_schedule,
    run_two_stage,
)
from repro.core.scheduler import (
    MbspIlpScheduler,
    MbspSchedulingResult,
    estimate_time_steps,
    schedule_mbsp,
)

__all__ = [
    "BoundaryConditions",
    "MbspIlpBuilder",
    "MbspIlpConfig",
    "MbspIlpVariables",
    "extract_schedule",
    "TwoStageResult",
    "baseline_schedule",
    "practical_baseline_schedule",
    "run_two_stage",
    "MbspIlpScheduler",
    "MbspSchedulingResult",
    "estimate_time_steps",
    "schedule_mbsp",
]
