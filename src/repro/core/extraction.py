"""Conversion of ILP solutions back into explicit MBSP schedules.

The ILP works on (merged) time steps; an MBSP schedule is organized into
supersteps with compute/save/delete/load phases.  The extraction walks over
the ILP steps, groups a maximal run of compute steps followed by a maximal
run of communication steps into one superstep, reconstructs the DELETE
operations from the ``hasred`` transitions, and removes operations that have
no effect (redundant saves of already-blue values, loads of values that are
dropped immediately).

Every extracted schedule is validated by the caller; the extraction itself is
written so the produced schedule respects the pebbling rules whenever the ILP
solution satisfies the model constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.graph import ComputationalDag, NodeId
from repro.ilp.solution import IlpSolution
from repro.model.instance import MbspInstance
from repro.model.pebbling import Operation, compute_op, delete_op
from repro.model.schedule import MbspSchedule, ProcessorSuperstep, Superstep
from repro.core.full_ilp import BoundaryConditions, MbspIlpVariables


@dataclass
class _StepOps:
    """Per-step, per-processor operation lists read from the ILP solution."""

    computes: List[List[NodeId]]
    saves: List[List[NodeId]]
    loads: List[List[NodeId]]
    deletes: List[List[NodeId]]   # red pebbles dropped at the end of the step

    def is_compute_step(self) -> bool:
        return any(self.computes)

    def is_comm_step(self) -> bool:
        return any(self.saves) or any(self.loads)

    def is_empty(self) -> bool:
        return not (
            self.is_compute_step()
            or self.is_comm_step()
            or any(self.deletes)
        )


def extract_schedule(
    instance: MbspInstance,
    variables: MbspIlpVariables,
    solution: IlpSolution,
    boundary: Optional[BoundaryConditions] = None,
) -> MbspSchedule:
    """Build an :class:`MbspSchedule` from an ILP solution."""
    boundary = boundary or BoundaryConditions()
    dag = instance.dag
    P = instance.num_processors
    T = variables.num_steps
    topo_pos = {v: i for i, v in enumerate(dag.topological_order())}
    initial_blue = set(dag.sources()) | set(boundary.initial_blue)

    def initially_red(p: int, v: NodeId) -> bool:
        return v in boundary.initial_red.get(p, set())

    def hasred(p: int, v: NodeId, t: int) -> bool:
        return variables.hasred_value(solution, p, v, t, initial=initially_red(p, v))

    def hasblue(v: NodeId, t: int) -> bool:
        if v in initial_blue:
            return True
        return variables.hasblue_value(solution, v, t, initial=False)

    steps: List[_StepOps] = []
    for t in range(T):
        computes: List[List[NodeId]] = [[] for _ in range(P)]
        saves: List[List[NodeId]] = [[] for _ in range(P)]
        loads: List[List[NodeId]] = [[] for _ in range(P)]
        for p in range(P):
            for v in dag.nodes:
                if variables.compute_value(solution, p, v, t):
                    computes[p].append(v)
                if variables.save_value(solution, p, v, t) and not hasblue(v, t):
                    saves[p].append(v)      # drop saves of already-blue values
                if variables.load_value(solution, p, v, t):
                    loads[p].append(v)
            # computes of one merged step must respect the DAG order
            computes[p].sort(key=lambda v: topo_pos[v])
        steps.append(_StepOps(computes=computes, saves=saves, loads=loads,
                              deletes=[[] for _ in range(P)]))

    # identify the communication runs so useless loads can be dropped: a value
    # loaded inside a comm run that is no longer red right after the run ends
    # was never used and is removed together with its (implicit) deletion
    run_end_after = [T] * T   # first step index after the comm run containing t
    t = 0
    while t < T:
        if steps[t].is_comm_step() and not steps[t].is_compute_step():
            end = t
            while (
                end + 1 < T
                and steps[end + 1].is_comm_step()
                and not steps[end + 1].is_compute_step()
            ):
                end += 1
            for k in range(t, end + 1):
                run_end_after[k] = end + 1
            t = end + 1
        else:
            run_end_after[t] = t + 1
            t += 1

    for t in range(T):
        boundary_t = run_end_after[t]
        for p in range(P):
            kept_loads = []
            for v in steps[t].loads[p]:
                if hasred(p, v, min(boundary_t, T)):
                    kept_loads.append(v)
                # else: the value is dropped before it is ever used — skip it
            steps[t].loads[p] = kept_loads

    # reconstruct deletions from the hasred transitions (taking the cleaned-up
    # loads into account: a value that was never actually loaded or kept needs
    # no deletion either)
    in_cache: List[Set[NodeId]] = [
        {v for v in dag.nodes if initially_red(p, v)} for p in range(P)
    ]
    for t in range(T):
        for p in range(P):
            new_cache = set(in_cache[p])
            new_cache.update(steps[t].computes[p])
            new_cache.update(steps[t].loads[p])
            keep = {v for v in new_cache if hasred(p, v, t + 1)}
            steps[t].deletes[p] = sorted(new_cache - keep, key=lambda v: topo_pos.get(v, 0))
            in_cache[p] = keep

    return _assemble_supersteps(instance, steps)


def _assemble_supersteps(instance: MbspInstance, steps: Sequence[_StepOps]) -> MbspSchedule:
    """Group ILP steps into supersteps (compute run followed by comm run)."""
    P = instance.num_processors
    supersteps: List[Superstep] = []
    current: Optional[Superstep] = None
    current_has_comm = False

    def ensure_current() -> Superstep:
        nonlocal current
        if current is None:
            current = Superstep(P)
        return current

    for step in steps:
        if step.is_empty():
            continue
        if step.is_compute_step():
            if current is not None and current_has_comm:
                supersteps.append(current)
                current = None
                current_has_comm = False
            target = ensure_current()
            for p in range(P):
                for v in step.computes[p]:
                    target[p].compute_phase.append(compute_op(v))
                # values dropped at the end of a compute step are deleted in
                # the compute phase (DELETE is allowed there), keeping the
                # cache usage of subsequent merged steps consistent
                for v in step.deletes[p]:
                    target[p].compute_phase.append(delete_op(v))
                # saves/loads in a mixed step can only belong to *other*
                # processors (per-processor phase exclusivity); place them in
                # the communication phases of the same superstep
                target[p].save_phase.extend(step.saves[p])
                target[p].load_phase.extend(step.loads[p])
            if step.is_comm_step():
                # mixed steps (possible in the asynchronous model) end the
                # superstep so that later computes see the loaded values in a
                # fresh compute phase
                current_has_comm = True
        else:
            target = ensure_current()
            current_has_comm = True
            for p in range(P):
                target[p].save_phase.extend(step.saves[p])
                target[p].delete_phase.extend(step.deletes[p])
                target[p].load_phase.extend(step.loads[p])
    if current is not None and not current.is_empty():
        supersteps.append(current)

    schedule = MbspSchedule(instance, supersteps)
    return schedule.drop_empty_supersteps()
