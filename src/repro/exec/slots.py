"""Per-process execution slots for concurrency *inside* a pipeline.

The :class:`~repro.exec.session.Session` owns the worker slots of a run.
When it executes jobs inline (``workers == 1`` plan fan-out, or a single
job with ``workers > 1``), it installs the slot count here so composite
pipeline stages — ``race(a,b,...)`` — can fan their branches out over
threads *within* the executing process.  Jobs dispatched to worker
processes run with the default of one slot (the process pool already uses
the machine); results are identical either way, only the wall clock
changes.

The scope is **thread-local**: the session enters it in the thread that
executes the job (the calling thread inline, a helper thread when the sync
facades run under an existing event loop), and the stages of that job read
it from the same thread.  Concurrent sessions in different threads
therefore cannot clobber each other's slot counts; threads without a scope
see the default of one slot.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

_LOCAL = threading.local()


@contextmanager
def slot_scope(slots: int) -> Iterator[int]:
    """Grant ``slots`` concurrent execution slots to pipelines in the scope."""
    previous = getattr(_LOCAL, "slots", 1)
    _LOCAL.slots = max(1, int(slots))
    try:
        yield _LOCAL.slots
    finally:
        _LOCAL.slots = previous


def branch_slots() -> int:
    """Slots available for fanning out composite-stage branches (>= 1)."""
    return getattr(_LOCAL, "slots", 1)
