"""Unified async execution core (``repro.exec``).

One :class:`Session` API executes everything: experiment batches, portfolio
sweeps and individual pipelines are all :class:`RunPlan`\\ s — job graphs of
pipeline-stage nodes — run on an asyncio core with bounded worker slots and
streaming :class:`ResultEvent`\\ s.  The content-hash result cache, JSONL
streaming + resume, and in-pipeline concurrency slots (used by ``race``
stages) are session services; the legacy ``ExperimentEngine`` and
``Portfolio`` entry points are thin shims over a session.

Quick start::

    >>> from repro.exec import Session, plan_pipelines
    >>> session = Session(workers=4, cache_dir=".repro-cache")
    >>> plan = plan_pipelines(["baseline|race(ilp@bnb,ilp@scipy)"], dags, config)
    >>> for event in session.stream(plan):
    ...     print(event.instance, event.result.ilp_cost, event.source)
"""

from repro.exec.plan import PlanNode, RunPlan, as_plan, plan_pipelines
from repro.exec.session import ResultEvent, Session, SessionStats
from repro.exec.slots import branch_slots, slot_scope
from repro.exec.store import ResultCache, ResultLog

__all__ = [
    "PlanNode",
    "ResultCache",
    "ResultEvent",
    "ResultLog",
    "RunPlan",
    "Session",
    "SessionStats",
    "as_plan",
    "branch_slots",
    "plan_pipelines",
    "slot_scope",
]
