"""Unified async execution core (``repro.exec``).

One :class:`Session` API executes everything: experiment batches, portfolio
sweeps and individual pipelines are all :class:`RunPlan`\\ s — job graphs of
pipeline-stage nodes — run on an asyncio core with bounded worker slots and
streaming :class:`ResultEvent`\\ s.  The content-hash result cache, JSONL
streaming + resume, and in-pipeline concurrency slots (used by ``race``
stages) are session services; the legacy ``ExperimentEngine`` and
``Portfolio`` entry points are thin shims over a session.  Plans also
split across processes or machines (:mod:`repro.exec.shard`):
``Session.run_sharded(plan, shards)`` fork-joins locally, and the CLI's
``repro exec run --shards N --shard-id I`` / ``repro exec merge`` pair
runs shards anywhere that shares the cache directory, with the per-shard
JSONL files stable-merged back into plan order.

Quick start::

    >>> from repro.exec import Session, plan_pipelines
    >>> session = Session(workers=4, cache_dir=".repro-cache")
    >>> plan = plan_pipelines(["baseline|race(ilp@bnb,ilp@scipy)"], dags, config)
    >>> for event in session.stream(plan):
    ...     print(event.instance, event.result.ilp_cost, event.source)
"""

from repro.exec.plan import PlanNode, RunPlan, as_plan, plan_pipelines
from repro.exec.session import ResultEvent, Session, SessionStats
from repro.exec.shard import (
    PlanShard,
    merge_shard_logs,
    run_sharded,
    shard_assignment,
    shard_plan,
    shard_results_path,
)
from repro.exec.slots import branch_slots, slot_scope
from repro.exec.store import ResultCache, ResultLog

__all__ = [
    "PlanNode",
    "PlanShard",
    "ResultCache",
    "ResultEvent",
    "ResultLog",
    "RunPlan",
    "Session",
    "SessionStats",
    "as_plan",
    "branch_slots",
    "merge_shard_logs",
    "plan_pipelines",
    "run_sharded",
    "shard_assignment",
    "shard_plan",
    "shard_results_path",
    "slot_scope",
]
