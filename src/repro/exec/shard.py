"""Coordinator/worker sharded execution of run plans.

A :class:`~repro.exec.plan.RunPlan` is a serializable job graph and the
JSONL result store is plan-ordered and byte-stable — which makes plans
splittable across processes (or machines) with no coordination beyond a
shared filesystem:

* :func:`shard_assignment` deterministically partitions a plan's nodes
  into ``shards`` shards by job index.  ``after=`` edges are respected by
  construction: nodes connected by edges form one *chain component* and
  the whole component lands in a single shard (components are assigned
  round-robin in plan order, so an edge-free plan shards exactly as
  ``index % shards``).  When the chains are so coarse that they cannot
  fill the requested shard count, the plan refuses to shard with a clear
  error instead of silently running lopsided.
* Every shard executes as an ordinary :class:`~repro.exec.session.Session`
  over its sub-plan — against a **shared** content-hash cache directory
  (safe for concurrent writer processes, see :mod:`repro.exec.store`) and
  a **per-shard** JSONL file (:func:`shard_results_path`; the JSONL log is
  single-appender by contract).
* :func:`merge_shard_logs` stable-merges the per-shard files back into
  plan order.  Lines are moved verbatim (never re-serialized), so the
  merged file is *byte-identical* to the file a single-machine run of the
  same plan would have produced, whenever the job results themselves are
  byte-identical — always true when shards replay a shared cache, and
  true for fresh runs up to the wall-clock telemetry fields
  (``solve_time`` / ``solver_stats``), which is why the determinism suite
  and CI prove the guarantee against a shared cache.

Two front-ends in the CLI (``repro exec run``): ``--shards N --shard-id I``
runs one worker shard (one invocation per shard, any machine, then
``repro exec merge``), and ``--spawn-shards N`` is the single-machine
fork-join convenience wrapped by :func:`run_sharded` /
:meth:`Session.run_sharded`.
"""

from __future__ import annotations

import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.exec.plan import RunPlan, as_plan
from repro.exec.store import PathLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import InstanceResult


@dataclass(frozen=True)
class PlanShard:
    """One worker's slice of a plan: the sub-plan plus its plan positions.

    ``indices[i]`` is the full-plan position of the sub-plan's ``i``-th
    node — the coordinator uses it to reassemble results (and the CLI to
    label streamed events) in full-plan order.
    """

    shards: int
    shard_id: int
    indices: Tuple[int, ...]
    plan: RunPlan


def shard_assignment(plan, shards: int) -> List[int]:
    """The shard id of every plan node, deterministically by job index.

    Nodes connected by ``after=`` edges form one chain component; each
    component is assigned whole, round-robin in plan order, so dependency
    chains never span shards and an edge-free plan shards exactly as
    ``index % shards``.  Raises :class:`ConfigurationError` when the
    plan's chains are too coarse to fill ``shards`` shards (fewer chain
    components than the shard count) — shard the plan edge-free, or use
    fewer shards.
    """
    plan = as_plan(plan)
    shards = int(shards)
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    n = len(plan.nodes)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i, node in enumerate(plan.nodes):
        for dep in node.after:
            a, b = find(i), find(plan.index_of(dep))
            if a != b:
                parent[max(a, b)] = min(a, b)

    # components numbered in plan order of their first node, then assigned
    # round-robin: component k -> shard k % shards
    component_order: dict = {}
    assignment: List[int] = []
    for i in range(n):
        root = find(i)
        if root not in component_order:
            component_order[root] = len(component_order)
        assignment.append(component_order[root] % shards)
    if shards > 1 and plan.has_edges:
        components = len(component_order)
        if components < min(shards, n):
            raise ConfigurationError(
                f"cannot split this plan into {shards} shards: its after= "
                f"edges chain the {n} nodes into only {components} "
                f"component(s), and a node always runs in the shard of its "
                f"dependency chain — use at most {components} shard(s) or "
                f"an edge-free plan"
            )
    return assignment


def shard_plan(plan, shards: int, shard_id: int) -> PlanShard:
    """Shard ``shard_id`` of ``plan`` split into ``shards`` shards."""
    plan = as_plan(plan)
    shards = int(shards)
    shard_id = int(shard_id)
    assignment = shard_assignment(plan, shards)
    if not 0 <= shard_id < shards:
        raise ConfigurationError(
            f"shard_id must be in [0, {shards}), got {shard_id}"
        )
    indices = tuple(i for i, s in enumerate(assignment) if s == shard_id)
    return PlanShard(
        shards=shards,
        shard_id=shard_id,
        indices=indices,
        plan=plan.subset(indices),
    )


def shard_results_path(
    results_path: PathLike, shards: int, shard_id: int
) -> Path:
    """The per-shard JSONL file derived from the merged results path.

    Built by name concatenation (``results.jsonl`` →
    ``results.jsonl.shard0of4``) so the merged path survives verbatim as
    the prefix regardless of dots in the file name.
    """
    return Path(str(results_path) + f".shard{int(shard_id)}of{int(shards)}")


def merge_shard_logs(
    plan,
    results_path: PathLike,
    shards: int,
    merged_path: Optional[PathLike] = None,
) -> Path:
    """Stable-merge per-shard JSONL files back into plan order.

    Reads every shard file (:func:`shard_results_path`), then emits each
    plan node's record — verbatim, the raw line is never re-serialized —
    in plan order, each job key once (matching the single-appender dedup
    of :class:`~repro.exec.store.ResultLog`).  The merged file is written
    atomically to ``merged_path`` (default: ``results_path`` itself) and
    is byte-identical to the single-process results file whenever the
    per-shard records are.  A plan node whose record is missing from its
    shard's file (interrupted worker, wrong ``--shards`` count) raises a
    clear :class:`ConfigurationError` naming the shard file to re-run.
    """
    plan = as_plan(plan)
    assignment = shard_assignment(plan, shards)
    shard_lines: List[dict] = []
    for shard_id in range(int(shards)):
        lines: dict = {}
        path = shard_results_path(results_path, shards, shard_id)
        if path.is_file():
            with open(path, "r") as handle:
                for raw in handle:
                    line = raw.strip()
                    if not line:
                        continue
                    try:
                        key = str(json.loads(line)["key"])
                    except (ValueError, KeyError, TypeError):
                        continue  # skip-malformed contract of the stores
                    lines.setdefault(key, line)
        shard_lines.append(lines)

    merged: List[str] = []
    emitted: set = set()
    for i, node in enumerate(plan.nodes):
        key = node.job.key()
        if key in emitted:
            continue
        line = shard_lines[assignment[i]].get(key)
        if line is None:
            path = shard_results_path(results_path, shards, assignment[i])
            raise ConfigurationError(
                f"shard merge failed: no record for plan node {node.id!r} "
                f"(instance {node.job.instance_name!r}, key {key[:12]}...) "
                f"in {path} — re-run shard {assignment[i]} of {shards}, and "
                f"check that --shards and the plan flags match the shard runs"
            )
        merged.append(line)
        emitted.add(key)

    target = Path(merged_path if merged_path is not None else results_path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=".merge-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            for line in merged:
                handle.write(line + "\n")
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def _run_shard_worker(
    nodes,
    shards: int,
    shard_id: int,
    workers: int,
    cache_dir,
    results_path,
    resume: bool,
    job_timeout,
):
    """Executed in a worker process: run one shard through its own session.

    Returns ``(indices, result_dicts, stats)`` — full-plan positions, the
    serialized results in sub-plan order, and the shard session's counter
    tuple for the coordinator to aggregate.
    """
    from repro import obs
    from repro.exec.session import Session

    plan = RunPlan(nodes)
    shard = shard_plan(plan, shards, shard_id)
    session = Session(
        workers=workers,
        cache_dir=cache_dir,
        results_path=(
            shard_results_path(results_path, shards, shard_id)
            if results_path is not None
            else None
        ),
        resume=resume,
        job_timeout=job_timeout,
    )
    # the worker inherits tracing from REPRO_TRACE (spawn) or the forked
    # tracer state; its spans spill per-pid and merge into one timeline
    span = obs.NULL_SCOPE
    if obs.tracing_enabled():
        span = obs.trace_span(
            "shard.run",
            category="session",
            shard=shard_id,
            shards=shards,
            jobs=len(shard.plan),
        )
    try:
        with span:
            results = session.run(shard.plan)
    finally:
        if obs.tracing_enabled():
            # worker processes exit via os._exit: flush before returning
            obs.flush_observability()
    stats = session.stats
    return (
        shard.indices,
        [result.to_dict() for result in results],
        (stats.total, stats.executed, stats.cache_hits, stats.resumed),
    )


def run_sharded(
    plan,
    shards: int,
    *,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    results_path: Optional[PathLike] = None,
    resume: bool = False,
    job_timeout: Optional[float] = None,
    stats=None,
) -> List["InstanceResult"]:
    """Fork-join coordinator: run ``plan`` as ``shards`` worker processes.

    Each shard runs in its own process as a ``Session(workers=workers)``
    against the shared ``cache_dir`` and its per-shard JSONL file; the
    coordinator then stable-merges the shard files into ``results_path``
    (when given) and returns the results in plan order.  A failing shard
    job propagates its exception to the coordinator.  ``stats`` (a
    :class:`~repro.exec.session.SessionStats`) accumulates the shard
    sessions' counters when provided.
    """
    from repro.experiments.runner import InstanceResult

    plan = as_plan(plan)
    shards = int(shards)
    assignment = shard_assignment(plan, shards)  # validates shards/edges
    del assignment
    results: List[Optional[InstanceResult]] = [None] * len(plan)
    payload = list(plan.nodes)
    with ProcessPoolExecutor(max_workers=max(1, shards)) as pool:
        futures = [
            pool.submit(
                _run_shard_worker,
                payload,
                shards,
                shard_id,
                workers,
                str(cache_dir) if cache_dir is not None else None,
                str(results_path) if results_path is not None else None,
                resume,
                job_timeout,
            )
            for shard_id in range(shards)
        ]
        for future in futures:
            indices, dicts, counters = future.result()
            for index, data in zip(indices, dicts):
                results[index] = InstanceResult.from_dict(data)
            if stats is not None:
                stats.total += counters[0]
                stats.executed += counters[1]
                stats.cache_hits += counters[2]
                stats.resumed += counters[3]
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:  # pragma: no cover - defensive: assignment covers every node
        raise RuntimeError(f"sharded run produced no result for nodes {missing}")
    if results_path is not None:
        merge_shard_logs(plan, results_path, shards)
    return results  # type: ignore[return-value]
