"""The unified execution core: one :class:`Session` for every surface.

Historically the repository had three parallel execution surfaces —
``ExperimentEngine`` (process fan-out + cache + JSONL), ``Portfolio.run``
(member loop with prefix reuse) and the ``Pipeline`` runner (sequential
stages).  A :class:`Session` subsumes them: it accepts a
:class:`~repro.exec.plan.RunPlan` (a job graph of pipeline-stage nodes) and
executes it on an asyncio core with bounded worker slots, streaming one
:class:`ResultEvent` per completed node.  Experiments, portfolio runs and
individual pipelines are all *plans* now; the legacy entry points are thin
shims over a session and remain byte-identical (pinned by the golden
equivalence suites).

Execution semantics (all inherited from the engine, now session services):

* **Determinism** — results are returned in plan order, and winner
  selection inside ``race(...)`` stages is order-independent, so a
  ``workers=4`` run is bit-identical to ``workers=1`` whenever the jobs
  themselves are deterministic (node-limited ILP solves, seeded stages).
* **Content-hash cache** (``cache_dir=``) — hits replay recorded results
  without executing; budget/race limits are part of the canonical spec and
  hence of the hash, so a budgeted outcome is replayed as-is.
* **JSONL streaming + resume** (``results_path=`` / ``resume=True``) —
  completed results append to a JSONL log in plan order; resumed keys are
  not re-executed.
* **In-pipeline concurrency** — when the session executes a job inline it
  grants its worker slots to the pipeline (:mod:`repro.exec.slots`), so a
  ``race(...)`` stage fans branches out over threads; jobs dispatched to
  worker processes run their pipelines with one slot each.

``Session.run`` / ``Session.stream`` are synchronous facades over the
asyncio core (``Session.arun`` / ``Session.astream``) — use the async forms
inside an existing event loop.
"""

from __future__ import annotations

import asyncio
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, AsyncIterator, Dict, Iterator, List, Optional

from repro import obs
from repro.exec.plan import RunPlan, as_plan
from repro.exec.slots import slot_scope
from repro.exec.store import PathLike, ResultCache, ResultLog

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.experiments.runner import InstanceResult


@dataclass
class SessionStats:
    """Bookkeeping of one session: how each node's result was obtained."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0

    def describe(self) -> str:
        return (
            f"{self.total} jobs: {self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.resumed} resumed"
        )


@dataclass
class ResultEvent:
    """One streamed completion: the result of one plan node.

    ``index`` is the node's *plan* position (events arrive in completion
    order; collect by index to recover plan order), ``source`` records how
    the result was obtained (``"executed"``, ``"cache"`` or ``"resumed"``).
    """

    index: int
    node_id: str
    key: str
    kind: str
    instance: str
    result: InstanceResult
    source: str
    #: the job's member/pipeline spec when it has one (progress display)
    member: str = ""


class Session:
    """Executes run plans on an asyncio core with bounded worker slots.

    Parameters
    ----------
    workers:
        Concurrent worker slots.  ``1`` executes nodes sequentially in this
        process (pipelines still receive the slot count, so a lone
        ``workers=4`` job can race branches over 4 threads); with more
        workers and more than one pending node, nodes fan out over a
        process pool.
    cache_dir / results_path / resume:
        The content-hash result cache, the JSONL result stream and resume —
        see :mod:`repro.exec.store`.
    job_timeout:
        Optional bound, in seconds, on each node executing on the process
        pool (a liveness guard for parallel runs: exceeding it raises
        :class:`TimeoutError` without killing the stuck worker process).
        It does not apply to inline execution — a thread cannot be
        interrupted — and it never truncates a completed result.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[PathLike] = None,
        results_path: Optional[PathLike] = None,
        resume: bool = False,
        job_timeout: Optional[float] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache = ResultCache(cache_dir)
        self.log = ResultLog(results_path)
        self.resume = resume
        self.job_timeout = job_timeout
        self.stats = SessionStats()
        #: optional observer called as ``on_event(event, stats)`` before each
        #: event is yielded (the ``--progress`` renderer attaches here)
        self.on_event = None
        if resume and not self.log.enabled:
            warnings.warn(
                "resume=True without a results_path is a no-op: there is no "
                "results file to resume from, so every job will re-execute",
                UserWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    # synchronous facades
    # ------------------------------------------------------------------
    @staticmethod
    def _inside_event_loop() -> bool:
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return False
        return True

    def run(self, plan) -> List[InstanceResult]:
        """Execute ``plan`` and return its results in plan order.

        Callable from anywhere: outside an event loop it drives the async
        core directly; inside one (Jupyter, async frameworks) the core runs
        on a dedicated thread — use :meth:`arun` to stay on the loop.
        """
        if self._inside_event_loop():
            with ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-exec-run"
            ) as pool:
                return pool.submit(asyncio.run, self.arun(plan)).result()
        return asyncio.run(self.arun(plan))

    def stream(self, plan) -> Iterator[ResultEvent]:
        """Execute ``plan``, yielding a :class:`ResultEvent` per completion.

        Like :meth:`run`, works both outside an event loop and (via a
        dedicated thread) inside one.
        """
        if self._inside_event_loop():
            yield from self._stream_threaded(plan)
            return
        loop = asyncio.new_event_loop()
        agen = self.astream(plan)
        try:
            while True:
                try:
                    yield loop.run_until_complete(agen.__anext__())
                except StopAsyncIteration:
                    break
        finally:
            # close the async generator even when the consumer stops early,
            # so abandoned runs cancel their tasks and shut the pool down
            try:
                loop.run_until_complete(agen.aclose())
            finally:
                loop.close()

    def _stream_threaded(self, plan) -> Iterator[ResultEvent]:
        """Drive the async core on a dedicated thread, relaying events.

        When the consumer abandons the iterator, the drain task is
        cancelled on its own loop so the remaining jobs stop (the async
        generator's cleanup cancels its tasks and shuts the pool down) —
        mirroring the explicit ``aclose`` of the non-threaded path.
        """
        import queue as _queue
        import threading

        relay: "_queue.Queue" = _queue.Queue()
        state: Dict[str, object] = {}

        def worker() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def drain() -> None:
                async for event in self.astream(plan):
                    relay.put(("event", event))

            task = loop.create_task(drain())
            state["loop"], state["task"] = loop, task
            try:
                loop.run_until_complete(task)
            except asyncio.CancelledError:
                relay.put(("done", None))
            except BaseException as exc:  # repro: lint-ignore[REP-C03] - relayed to the consuming thread and re-raised there
                relay.put(("error", exc))
            else:
                relay.put(("done", None))
            finally:
                try:
                    loop.run_until_complete(loop.shutdown_asyncgens())
                finally:
                    loop.close()

        thread = threading.Thread(
            target=worker, name="repro-exec-stream", daemon=True
        )
        thread.start()
        finished = False
        try:
            while True:
                kind, payload = relay.get()
                if kind == "event":
                    yield payload
                elif kind == "error":
                    finished = True
                    raise payload
                else:
                    finished = True
                    return
        finally:
            if not finished:
                loop = state.get("loop")
                task = state.get("task")
                if loop is not None and task is not None:
                    loop.call_soon_threadsafe(task.cancel)  # type: ignore[union-attr]
            thread.join(timeout=5.0)

    def run_one(self, job) -> InstanceResult:
        """Convenience wrapper: run a single job."""
        return self.run([job])[0]

    def run_sharded(self, plan, shards: int) -> List[InstanceResult]:
        """Fork-join ``plan`` over ``shards`` worker processes.

        The single-machine coordinator mode of :mod:`repro.exec.shard`:
        the plan is deterministically partitioned by job index (dependency
        chains stay within one shard), every shard runs in its own process
        as a session with this session's settings — sharing this session's
        ``cache_dir``, writing a per-shard JSONL file — and the per-shard
        files are stable-merged back into ``results_path`` in plan order
        (byte-identical to a single-process run of the same plan whenever
        the job results are, e.g. replayed from the shared cache).
        Results return in plan order; shard counters accumulate into
        :attr:`stats`.
        """
        from repro.exec.shard import run_sharded

        results = run_sharded(
            as_plan(plan),
            shards,
            workers=self.workers,
            cache_dir=self.cache.cache_dir,
            results_path=self.log.results_path,
            resume=self.resume,
            job_timeout=self.job_timeout,
            stats=self.stats,
        )
        # the merge rewrote the results file underneath this session's log
        self.log.invalidate()
        return results

    # ------------------------------------------------------------------
    # pipeline facade
    # ------------------------------------------------------------------
    def run_pipeline(self, spec, dag=None, config=None, *, instance=None,
                     prune_gap: Optional[float] = None):
        """Run one pipeline inline under this session's slots.

        Unlike :meth:`run` (which reduces results to ``InstanceResult``),
        this returns the full :class:`~repro.pipeline.PipelineResult` with
        per-stage telemetry; ``race(...)`` stages fan out over the
        session's worker slots.
        """
        from repro.pipeline import Pipeline

        with slot_scope(self.workers):
            return Pipeline(spec).run(
                dag, config, instance=instance, prune_gap=prune_gap
            )

    # ------------------------------------------------------------------
    # the asyncio core
    # ------------------------------------------------------------------
    async def arun(self, plan) -> List[InstanceResult]:
        """Async form of :meth:`run`."""
        plan = as_plan(plan)
        results: List[Optional[InstanceResult]] = [None] * len(plan)
        async for event in self.astream(plan):
            results[event.index] = event.result
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - defensive: every node yields one event
            raise RuntimeError(f"session produced no result for nodes {missing}")
        return results  # type: ignore[return-value]

    async def astream(self, plan) -> AsyncIterator[ResultEvent]:
        """Execute ``plan``, yielding one event per node as it completes.

        Nodes whose result comes from the resume log or the cache resolve
        first (in plan order, without consuming worker slots); pending
        nodes execute under the slot semaphore, respecting ``after`` edges,
        and their events arrive in completion order.  Cache and JSONL
        writes always happen in plan order, so the stores are byte-stable
        across worker counts.

        This wrapper adds the observability shell around the core: the
        ``session.run`` span, the :attr:`on_event` hook (progress
        rendering) and the end-of-run span/metrics flush — none of which
        touches results, stores or event order.
        """
        plan = as_plan(plan)
        traced = obs.tracing_enabled()
        span = obs.NULL_SCOPE
        if traced:
            span = obs.trace_span(
                "session.run",
                category="session",
                jobs=len(plan),
                workers=self.workers,
            )
        before = (self.stats.executed, self.stats.cache_hits, self.stats.resumed)
        with span:
            try:
                async for event in self._astream_inner(plan):
                    if self.on_event is not None:
                        self.on_event(event, self.stats)
                    yield event
            finally:
                if traced:
                    span.set(
                        executed=self.stats.executed - before[0],
                        cache_hits=self.stats.cache_hits - before[1],
                        resumed=self.stats.resumed - before[2],
                    )
                    obs.flush_observability()

    async def _astream_inner(self, plan: RunPlan) -> AsyncIterator[ResultEvent]:
        """The asyncio core behind :meth:`astream` (already a ``RunPlan``)."""
        from repro.experiments.parallel import execute_job
        from repro.experiments.runner import InstanceResult
        nodes = plan.nodes
        self.stats.total += len(nodes)
        keys = [node.job.key() for node in nodes]

        # always index an existing results file (not only under resume):
        # appends must skip keys the file already holds, or a cache-served
        # re-run would double-count every instance
        recorded = self.log.recorded()
        resolved: Dict[int, ResultEvent] = {}
        pending: List[int] = []
        for i, (node, key) in enumerate(zip(nodes, keys)):
            if self.resume and key in recorded:
                result = InstanceResult.from_dict(recorded[key])
                self.stats.resumed += 1
                # keep the two stores consistent: a result resumed from the
                # JSONL file also becomes a disk-cache entry
                self.cache.store(key, result)
                resolved[i] = self._event(plan, i, key, result, "resumed")
                continue
            cached = self.cache.load(key)
            if cached is not None:
                self.stats.cache_hits += 1
                # the results file must record the whole batch, not only
                # the jobs that happened to miss the cache
                self.log.append(key, node.job, cached)
                resolved[i] = self._event(plan, i, key, cached, "cache")
                continue
            pending.append(i)

        for i in sorted(resolved):
            yield resolved[i]
        if not pending:
            return

        loop = asyncio.get_running_loop()
        inline = self.workers == 1 or len(pending) == 1
        if inline:
            # sequential execution *in the driving thread* (no executor):
            # exactly the legacy engine behaviour — Ctrl-C lands inside the
            # running solver, and nothing can outlive the interpreter.
            # Pipelines inherit the session's slots, so race branches can
            # still fan out over threads.
            executor = None
            workers = self.workers

            def call(job):
                with slot_scope(workers):
                    return execute_job(job)

        else:
            executor = self._make_executor(len(pending))
            call = execute_job

        semaphore = asyncio.Semaphore(self.workers)
        done_flags = {node.id: asyncio.Event() for node in nodes}
        for i in resolved:
            done_flags[nodes[i].id].set()
        queue: asyncio.Queue = asyncio.Queue()
        traced = obs.tracing_enabled()
        # job lifecycle spans chain to the session span explicitly: several
        # are open at once in this thread, so the stack cannot order them
        session_span_id = obs.get_tracer().current_span_id() if traced else None
        busy_slots = [0]

        async def run_node(i: int) -> None:
            node = nodes[i]
            try:
                queued_at = loop.time()
                for dep in node.after:
                    await done_flags[dep].wait()
                async with semaphore:
                    busy_slots[0] += 1
                    job_span = obs.NULL_SCOPE
                    if traced:
                        job_span = obs.trace_span_detached(
                            "session.job",
                            category="session",
                            parent=session_span_id,
                            node=node.id,
                            kind=node.job.kind,
                            instance=node.job.instance_name,
                            queued_wait=loop.time() - queued_at,
                            slots_busy=busy_slots[0],
                            workers=self.workers,
                        )
                        obs.observe("session.slots_busy", busy_slots[0])
                    try:
                        with job_span:
                            result = await execute_one(node)
                    finally:
                        busy_slots[0] -= 1
            except BaseException as exc:  # repro: lint-ignore[REP-C03] - queued and resurfaced by the plan driver
                queue.put_nowait((i, None, exc))
                return
            queue.put_nowait((i, result, None))
            done_flags[node.id].set()

        async def execute_one(node) -> InstanceResult:
            if executor is None:
                # inline: block the driving thread for this job, exactly
                # like the historical serial engine (the job_timeout
                # liveness guard applies to pool execution only — the
                # engine's historical contract, since a thread cannot be
                # interrupted).  The cooperative yield first lets the
                # previous job's event reach the consumer and gives pending
                # cancellations (an abandoned stream) a point to land
                # between jobs.
                await asyncio.sleep(0)
                return call(node.job)
            future = loop.run_in_executor(executor, call, node.job)
            if self.job_timeout is not None:
                # the session timeout is detected *here*, at the wait_for
                # call site: on Python >= 3.11 asyncio.TimeoutError is
                # TimeoutError, so a TimeoutError raised by the job itself
                # is indistinguishable by type downstream.  The shield
                # keeps wait_for from cancelling the future, so a job that
                # completed (or raised) exactly at the limit is honoured
                # as-is.
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(future), self.job_timeout
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    if future.done() and not future.cancelled():
                        # the job finished: surface its own result or
                        # error untouched
                        return future.result()
                    raise TimeoutError(
                        f"job {node.id!r} exceeded the session "
                        f"job_timeout of {self.job_timeout:g}s"
                    ) from None
            return await future

        tasks = [asyncio.create_task(run_node(i)) for i in pending]
        # persistence happens in plan order regardless of completion order
        to_persist = deque(pending)
        finished: Dict[int, InstanceResult] = {}
        try:
            for _ in range(len(pending)):
                i, result, error = await queue.get()
                if error is not None:
                    raise error
                finished[i] = result
                while to_persist and to_persist[0] in finished:
                    j = to_persist.popleft()
                    self.stats.executed += 1
                    self.cache.store(keys[j], finished[j])
                    self.log.append(keys[j], nodes[j].job, finished[j])
                yield self._event(plan, i, keys[i], result, "executed")
        except BaseException:
            # on failure/timeout the pool is abandoned without waiting
            # (queued jobs cancelled, a stuck worker orphaned) so the
            # caller is actually unblocked
            for task in tasks:
                task.cancel()
            # jobs that already completed must not be re-executed by a
            # resumed run: drain any completions still queued, write every
            # finished result to the cache, and extend the JSONL log while
            # contiguous in plan order (the log stays plan-ordered, so it
            # stops at the first unfinished node)
            while True:
                try:
                    j, result, err = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if err is None and result is not None:
                    finished[j] = result
            for j in to_persist:
                if j in finished:
                    self.stats.executed += 1
                    self.cache.store(keys[j], finished[j])
            while to_persist and to_persist[0] in finished:
                j = to_persist.popleft()
                self.log.append(keys[j], nodes[j].job, finished[j])
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            raise
        if executor is not None:
            executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _make_executor(self, pending_count: int):
        """The worker pool for non-inline execution (a seam for tests, which
        substitute a thread pool to exercise the pool failure paths without
        real processes)."""
        return ProcessPoolExecutor(max_workers=min(self.workers, pending_count))

    @staticmethod
    def _event(
        plan: RunPlan, index: int, key: str, result: InstanceResult, source: str
    ) -> ResultEvent:
        node = plan.nodes[index]
        return ResultEvent(
            index=index,
            node_id=node.id,
            key=key,
            kind=node.job.kind,
            instance=node.job.instance_name,
            result=result,
            source=source,
            member=str(dict(node.job.params).get("member", "")),
        )
