"""Result persistence services of the execution core.

Two stores, both keyed by the job content hash
(:meth:`repro.experiments.parallel.ExperimentJob.key`):

* :class:`ResultCache` — one JSON file per job hash in a cache directory.
  A hit replays the recorded :class:`~repro.experiments.runner.
  InstanceResult` without executing anything — including budgeted and
  raced outcomes, whose limits are part of the canonical spec and hence of
  the hash.  Corrupt entries read as misses and are overwritten.
* :class:`ResultLog` — an append-only JSONL stream of completed results
  (one object per line: job key, kind, instance name, result), which
  doubles as the *resume* store: keys already recorded are not re-executed.

Both were previously private to ``ExperimentEngine``; they are now session
services shared by every execution surface (engine shim, portfolio,
``repro exec run`` — including its sharded coordinator/worker mode,
:mod:`repro.exec.shard`).

Multi-process contract (what sharded execution relies on):

* :class:`ResultCache` is safe for any number of concurrent writer and
  reader *processes* on one cache directory: every ``store`` writes a
  unique temp file and atomically ``os.replace``\\ s it over the entry, so
  readers only ever see a complete old or new entry, and unreadable or
  unwritable entries degrade to cache misses instead of failing the run.
* :class:`ResultLog` stays a **single-appender** store: concurrent
  appenders to one JSONL file would interleave resume indices and break
  the byte-stable plan ordering.  Sharded runs therefore give every shard
  its own file (:func:`repro.exec.shard.shard_results_path`) and
  stable-merge them back into plan order afterwards.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.experiments.runner import InstanceResult

PathLike = Union[str, Path]


class ResultCache:
    """On-disk result cache: one JSON file per job content hash."""

    def __init__(self, cache_dir: Optional[PathLike] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None

    @property
    def enabled(self) -> bool:
        return self.cache_dir is not None

    def path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        # name concatenation, not with_suffix: a key containing a dot must
        # still map to exactly "<key>.json" (with_suffix would clobber the
        # part after the key's last dot)
        return self.cache_dir / (key + ".json")

    def load(self, key: str) -> Optional["InstanceResult"]:
        from repro import obs
        from repro.experiments.runner import InstanceResult

        path = self.path(key)
        if path is None:
            return None
        try:
            text = path.read_text()
        except OSError:
            # missing, unreadable, or occupied by a directory: a cache miss
            obs.count("cache.miss")
            return None
        try:
            result = InstanceResult.from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError):
            # a corrupt cache entry is treated as a miss and overwritten
            obs.count("cache.miss")
            return None
        obs.count("cache.hit")
        return result

    def store(self, key: str, result: "InstanceResult") -> None:
        """Write (or repair) the cache entry for ``key``.

        Safe under concurrent writer processes sharing one cache directory
        (the sharded-execution layout): each writer stages the entry in its
        own unique temp file (``tempfile.mkstemp``), then atomically
        ``os.replace``\\ s it over ``<key>.json`` — readers never observe a
        torn entry, and the last completed writer wins.  A store that fails
        at the filesystem level (disk full, permissions, the entry path
        occupied by a directory) warns and leaves the run uncached instead
        of crashing it.
        """
        from repro import obs

        path = self.path(key)
        if path is None:
            return
        obs.count("cache.store")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".store-", suffix=".tmp"
            )
        except OSError as exc:
            warnings.warn(
                f"result cache store failed for key {key!r} ({exc}); "
                f"continuing without caching this result",
                UserWarning,
                stacklevel=2,
            )
            return
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(result.to_dict(), sort_keys=True))
            os.replace(tmp, path)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            warnings.warn(
                f"result cache store failed for key {key!r} ({exc}); "
                f"continuing without caching this result",
                UserWarning,
                stacklevel=2,
            )


class ResultLog:
    """JSONL result stream + resume index.

    The file is parsed at most once per log instance; afterwards the
    in-memory index is kept current by :meth:`append` (one log instance is
    the file's only appender, matching the engine's historical contract —
    concurrent appender *processes* must not share one file, which is why
    sharded runs write per-shard files and merge them afterwards, see
    :mod:`repro.exec.shard`).  Keys already present in the file — or
    already appended by this instance — are skipped, so re-running a batch
    against the same results file never double-counts a job.  The file is
    streamed line by line when first indexed, so resuming a very large
    results file does not hold the whole file in memory.

    Appends go through one lazily-opened append handle that stays open for
    the life of the instance (a 10^5-record service bench would otherwise
    pay an open/close syscall pair per record).  Every record is flushed
    after the write, so readers of the file — including this instance's own
    :meth:`recorded` — always see complete lines.  The handle is released
    by :meth:`close` (the log is also a context manager) and by
    :meth:`invalidate`, which must drop it anyway because the file is about
    to change underneath the instance.
    """

    def __init__(self, results_path: Optional[PathLike] = None) -> None:
        self.results_path = Path(results_path) if results_path else None
        self._streamed_keys: set = set()
        self._recorded_index: Optional[Dict[str, dict]] = None
        self._handle = None

    @property
    def enabled(self) -> bool:
        return self.results_path is not None

    def recorded(self) -> Dict[str, dict]:
        """Job-key -> result-dict index of the JSONL results store."""
        if self._recorded_index is not None:
            return self._recorded_index
        if self.results_path is None or not self.results_path.is_file():
            self._recorded_index = {}
            return self._recorded_index
        from repro.experiments.reporting import iter_jsonl_records

        recorded: Dict[str, dict] = {}
        for record in iter_jsonl_records(self.results_path):
            if "key" in record:
                recorded[str(record["key"])] = record["result"]
        self._streamed_keys.update(recorded)
        self._recorded_index = recorded
        return recorded

    def invalidate(self) -> None:
        """Drop the parsed index so the next read re-parses the file.

        Needed when the file changes underneath this instance — e.g. after
        :func:`repro.exec.shard.merge_shard_logs` rewrote it in plan order.
        Also closes the append handle: it points at the replaced file's old
        inode, so the next :meth:`append` must reopen the new file.
        """
        self.close()
        self._recorded_index = None
        self._streamed_keys = set()

    def close(self) -> None:
        """Release the append handle (reopened lazily by the next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def append(self, key: str, job, result: "InstanceResult") -> None:
        """Append one result record (deduplicated by job key)."""
        from repro import obs

        if self.results_path is None:
            return
        if key in self._streamed_keys:
            # a "log hit": the file already holds this key's record
            obs.count("log.dedup_hit")
            return
        obs.count("log.append")
        if self._handle is None:
            self.results_path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.results_path, "a")
        record = {
            "key": key,
            "kind": job.kind,
            "instance": job.instance_name,
            "result": result.to_dict(),
        }
        # jobs carrying a canonical member spec (portfolio kind) record it,
        # so the history miner (repro.learn.history) can attribute the cost
        # to the spec without rebuilding the job; older files without the
        # field simply mine to nothing
        member = dict(getattr(job, "params", ()) or ()).get("member")
        if member is not None:
            record["member"] = str(member)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._streamed_keys.add(key)
        if self._recorded_index is not None:
            self._recorded_index[key] = record["result"]
