"""Run plans: the job graph executed by :class:`repro.exec.session.Session`.

A :class:`RunPlan` is an ordered collection of :class:`PlanNode`\\ s, each
wrapping one picklable :class:`~repro.experiments.parallel.ExperimentJob`
(the existing unit of work: kind + DAG + config + params) plus optional
``after=(node_id, ...)`` ordering edges.  The session executes ready nodes
concurrently under its worker slots, respecting the edges; results are
always *returned* in plan order, so a plan without edges behaves exactly
like the historical engine batch.

Builders:

* :meth:`RunPlan.from_jobs` — one node per job, no edges (the engine shim);
* :func:`plan_pipelines` — the ``specs x dags`` fan-out used by the
  portfolio and ``repro exec run``: one ``portfolio``-kind node per
  (dag, canonical spec) pair, instance-major.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.graph import ComputationalDag
    from repro.experiments.parallel import ExperimentJob
    from repro.experiments.runner import ExperimentConfig


@dataclass(frozen=True)
class PlanNode:
    """One node of a run plan: a job plus the nodes it must run after."""

    id: str
    job: "ExperimentJob"
    after: Tuple[str, ...] = ()


class RunPlan:
    """An ordered, validated job graph."""

    def __init__(self, nodes: Iterable[PlanNode] = ()) -> None:
        self.nodes: List[PlanNode] = []
        self._ids: Dict[str, int] = {}
        for node in nodes:
            self._append(node)

    # ------------------------------------------------------------------
    def _append(self, node: PlanNode) -> None:
        if node.id in self._ids:
            raise ConfigurationError(f"duplicate plan node id {node.id!r}")
        for dep in node.after:
            if dep not in self._ids:
                raise ConfigurationError(
                    f"plan node {node.id!r} depends on unknown node {dep!r}; "
                    f"dependencies must be added before their dependents"
                )
        self._ids[node.id] = len(self.nodes)
        self.nodes.append(node)

    def add(
        self,
        job: "ExperimentJob",
        id: Optional[str] = None,
        after: Sequence[str] = (),
    ) -> str:
        """Append one job; returns the node id (generated when omitted).

        Edges may only point at already-added nodes, which makes every plan
        acyclic by construction.
        """
        node_id = id if id is not None else f"n{len(self.nodes)}"
        self._append(PlanNode(id=node_id, job=job, after=tuple(after)))
        return node_id

    @classmethod
    def from_jobs(cls, jobs: Sequence["ExperimentJob"]) -> "RunPlan":
        """An edge-free plan: one node per job, engine-batch semantics."""
        plan = cls()
        for job in jobs:
            plan.add(job)
        return plan

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def index_of(self, node_id: str) -> int:
        return self._ids[node_id]

    @property
    def has_edges(self) -> bool:
        """True when any node carries an ``after=`` ordering edge."""
        return any(node.after for node in self.nodes)

    def subset(self, indices: Iterable[int]) -> "RunPlan":
        """A new plan over the given node positions (in ascending order).

        Node ids and edges are preserved, so the subset must be closed
        under ``after=`` dependencies — picking a node without its
        dependency raises the usual unknown-node
        :class:`~repro.exceptions.ConfigurationError`.  This is the
        building block of sharded execution (:mod:`repro.exec.shard`),
        whose assignment keeps dependency chains within one shard.
        """
        positions = sorted({int(i) for i in indices})
        for i in positions:
            if not 0 <= i < len(self.nodes):
                raise ConfigurationError(
                    f"plan subset index {i} out of range for a plan of "
                    f"{len(self.nodes)} nodes"
                )
        return RunPlan(self.nodes[i] for i in positions)


def as_plan(plan_or_jobs) -> RunPlan:
    """Coerce a RunPlan, a single job, or a job sequence into a RunPlan."""
    if isinstance(plan_or_jobs, RunPlan):
        return plan_or_jobs
    from repro.experiments.parallel import ExperimentJob

    if isinstance(plan_or_jobs, ExperimentJob):
        return RunPlan.from_jobs([plan_or_jobs])
    return RunPlan.from_jobs(list(plan_or_jobs))


def plan_pipelines(
    specs: Sequence[str],
    dags: Sequence["ComputationalDag"],
    config: "ExperimentConfig",
    prune_gap: Optional[float] = None,
) -> RunPlan:
    """The ``specs x dags`` fan-out plan (instance-major, like the portfolio).

    Every spec is resolved to its canonical pipeline first (legacy member
    names and sweep-free raw specs are equally valid), so jobs are hashed —
    and disk-cached — under the canonical spelling.  ``prune_gap`` is
    attached only to members with prunable stages, keeping the other jobs'
    cache keys independent of the knob.
    """
    from repro.experiments.parallel import ExperimentJob
    from repro.portfolio.members import is_prunable_member, resolve_member

    canonical = {spec: resolve_member(spec) for spec in specs}
    plan = RunPlan()
    for dag in dags:
        for spec in specs:
            params = {"member": canonical[spec]}
            if prune_gap is not None and is_prunable_member(spec):
                params["prune_gap"] = prune_gap
            plan.add(ExperimentJob.make("portfolio", dag, config, **params))
    return plan
