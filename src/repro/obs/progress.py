"""Live stderr progress renderer for :class:`repro.exec.Session`.

Opt-in via ``--progress`` on ``exec run`` / ``experiment`` /
``serve bench``: one carriage-return-updated stderr line with jobs
done/total, the stage (member spec) of the latest event and the running
cache-hit count.  Renders nothing when stderr is not a TTY (CI logs stay
clean) and writes to stderr only, so piped stdout output is unaffected.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO


class ProgressRenderer:
    """One-line ``\\r`` progress display, TTY-gated."""

    def __init__(
        self, stream: Optional[TextIO] = None, enabled: Optional[bool] = None
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self._last_len = 0
        self._rendered = False

    def update(
        self, done: int, total: int, current: str = "", cache_hits: int = 0
    ) -> None:
        if not self.enabled:
            return
        pct = int(100 * done / total) if total else 100
        line = f"[{done}/{total}] {pct:3d}%  cache hits: {cache_hits}"
        if current:
            line += f"  {current}"
        pad = max(0, self._last_len - len(line))
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - broken stream
            self.enabled = False
            return
        self._last_len = len(line)
        self._rendered = True

    def close(self) -> None:
        """End the progress line (newline) if anything was rendered."""
        if self._rendered:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):  # pragma: no cover
                pass
            self._rendered = False
            self._last_len = 0

    # -- session wiring ------------------------------------------------
    def attach(self, session) -> "ProgressRenderer":
        """Install as the session's ``on_event`` hook.

        ``SessionStats`` accumulate across plans, which is exactly what a
        multi-plan run (e.g. serve bench phase 2) should display.
        """

        def hook(event, stats) -> None:
            done = stats.executed + stats.cache_hits + stats.resumed
            current = event.member or event.kind
            self.update(
                done,
                stats.total,
                current=f"{event.instance} · {current}",
                cache_hits=stats.cache_hits,
            )

        session.on_event = hook
        return self

    def __enter__(self) -> "ProgressRenderer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
