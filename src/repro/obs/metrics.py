"""Counters and histograms with cross-process merge (:mod:`repro.obs`).

A process-wide :class:`MetricsRegistry` tallies counters and histogram
observations under a lock (race-branch threads record concurrently) —
the same shape as :class:`repro.ilp.backends.SolverCallStats`, which
stays the authoritative solver tally; these metrics are the generic
layer on top.

Cross-process merge follows the span spill convention: each process
appends the *delta since its last flush* to ``metrics-<pid>.jsonl`` in
the spill directory, and :func:`merge_spill_metrics` sums counters and
concatenates histogram values back into one registry.  Histogram
percentiles are nearest-rank (deterministic, no interpolation), matching
the serve-bench SLO summary convention.

Recording helpers (:func:`count`, :func:`observe`) are no-ops while
observability is disabled, keeping the instrumented hot paths free.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional

from repro.obs.tracer import tracing_enabled

HISTOGRAM_VALUE_CAP = 4096
"""Per-histogram raw-value cap; further observations keep the count/sum
accurate but stop storing samples (``dropped`` counts them)."""


def nearest_rank_percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (deterministic)."""
    if not sorted_values:
        return 0.0
    rank = int(q * len(sorted_values) + 99) // 100  # ceil(q * n / 100)
    rank = min(len(sorted_values), max(1, rank))
    return sorted_values[rank - 1]


class Histogram:
    """Raw-value histogram summarised by nearest-rank percentiles."""

    __slots__ = ("count", "total", "values", "dropped")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.values: List[float] = []
        self.dropped = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self.values) < HISTOGRAM_VALUE_CAP:
            self.values.append(value)
        else:
            self.dropped += 1

    def percentile(self, q: float) -> float:
        return nearest_rank_percentile(sorted(self.values), q)

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self.values)
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": ordered[0] if ordered else 0.0,
            "max": ordered[-1] if ordered else 0.0,
            "p50": nearest_rank_percentile(ordered, 50),
            "p90": nearest_rank_percentile(ordered, 90),
            "p99": nearest_rank_percentile(ordered, 99),
        }


class MetricsRegistry:
    """Lock-protected counters + histograms with delta-based JSONL spill."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._flushed_counters: Dict[str, float] = {}
        self._flushed_values: Dict[str, int] = {}
        self._pid = os.getpid()

    def _check_pid(self) -> None:
        if os.getpid() != self._pid:
            # fork-inherited tallies belong to (and are flushed by) the parent
            self._pid = os.getpid()
            self._counters = {}
            self._histograms = {}
            self._flushed_counters = {}
            self._flushed_values = {}

    # -- recording -----------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        self._check_pid()
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        self._check_pid()
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # -- views ---------------------------------------------------------
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> Dict[str, object]:
        """Full state: ``{"counters": {...}, "histograms": {name: values}}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: list(hist.values)
                    for name, hist in self._histograms.items()
                },
            }

    def summary(self) -> Dict[str, object]:
        """Flat deterministic dump: counters + per-histogram percentiles."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name] for name in sorted(self._counters)
                },
                "histograms": {
                    name: self._histograms[name].summary()
                    for name in sorted(self._histograms)
                },
            }

    # -- merge ---------------------------------------------------------
    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        counters = snapshot.get("counters", {})
        histograms = snapshot.get("histograms", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + float(value)
            for name, values in histograms.items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                for value in values:
                    hist.observe(float(value))

    # -- spill ---------------------------------------------------------
    def flush(self, spill_dir: Optional[str]) -> bool:
        """Append the delta since the previous flush to the spill file."""
        self._check_pid()
        if spill_dir is None:
            return False
        with self._lock:
            counters = {
                name: value - self._flushed_counters.get(name, 0.0)
                for name, value in self._counters.items()
                if value != self._flushed_counters.get(name, 0.0)
            }
            histograms = {}
            for name, hist in self._histograms.items():
                seen = self._flushed_values.get(name, 0)
                fresh = hist.values[seen:]
                if fresh:
                    histograms[name] = list(fresh)
            if not counters and not histograms:
                return False
            self._flushed_counters = dict(self._counters)
            self._flushed_values = {
                name: len(hist.values) for name, hist in self._histograms.items()
            }
        payload = {"pid": self._pid, "counters": counters, "histograms": histograms}
        path = os.path.join(spill_dir, f"metrics-{self._pid}.jsonl")
        try:
            os.makedirs(spill_dir, exist_ok=True)
            with open(path, "a") as handle:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - spill must never break runs
            return False
        return True

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._flushed_counters.clear()
            self._flushed_values.clear()


_METRICS = MetricsRegistry()


def metrics() -> MetricsRegistry:
    return _METRICS


def count(name: str, value: float = 1.0) -> None:
    """Bump a counter — no-op while observability is disabled."""
    if tracing_enabled():
        _METRICS.inc(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation — no-op while disabled."""
    if tracing_enabled():
        _METRICS.observe(name, value)


def merge_spill_metrics(spill_dir: str) -> MetricsRegistry:
    """Merge every ``metrics-*.jsonl`` under ``spill_dir`` into a fresh
    registry (counters summed, histogram values concatenated)."""
    merged = MetricsRegistry()
    try:
        names = sorted(os.listdir(spill_dir))
    except OSError:
        return merged
    for name in names:
        if not (name.startswith("metrics-") and name.endswith(".jsonl")):
            continue
        try:
            with open(os.path.join(spill_dir, name)) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        merged.merge_snapshot(json.loads(line))
                    except (ValueError, TypeError, AttributeError):
                        continue
        except OSError:  # pragma: no cover
            continue
    return merged


def collect_metrics(spill_dir: Optional[str] = None) -> MetricsRegistry:
    """The merged view: spilled metrics from every process plus this
    process's unflushed tally."""
    if spill_dir is None:
        spill_dir = _METRICS_SPILL_DIR()
    if spill_dir is None:
        merged = MetricsRegistry()
        merged.merge_snapshot(_METRICS.snapshot())
        return merged
    _METRICS.flush(spill_dir)
    return merge_spill_metrics(spill_dir)


def _METRICS_SPILL_DIR() -> Optional[str]:
    from repro.obs.tracer import get_tracer

    return get_tracer().spill_dir
