"""Unified tracing & metrics layer (``repro.obs``).

One observability substrate for the whole stack:

* **Tracing** — :func:`trace_span` wraps Session job lifecycles, pipeline
  stages, race branches and budget scopes, ILP solves, refine loops and
  serve phases in :class:`Span` records (thread/process-aware ids, parent
  chaining, bounded buffer).  Zero-cost when disabled: the call returns a
  shared no-op scope, and hot sites guard attr construction behind
  :func:`tracing_enabled`.
* **Metrics** — process-wide counters/histograms
  (:func:`count` / :func:`observe`) with nearest-rank percentiles, merged
  across shard/worker processes via JSONL spill files (the
  ``SolverCallStats`` pattern).
* **Export** — Chrome trace-event JSON (Perfetto-loadable;
  ``repro obs export --format chrome-trace`` or ``--trace out.json`` on
  ``exec run`` / ``pipeline run`` / ``serve bench``) and flat metrics
  text/JSON dumps.
* **Progress** — :class:`ProgressRenderer`, the opt-in ``--progress``
  live stderr line for Session runs (TTY-gated).

Observability output never enters result fingerprints or content-hash
cache keys: spans and metrics live beside the results (the existing
``solver_stats`` convention), so traced runs stay byte-identical to
untraced ones.

Quick start::

    >>> from repro import obs
    >>> with obs.trace_scope(spill_dir=".trace"):
    ...     session.run(plan)
    >>> obs.write_chrome_trace("out.json", obs.collect_spans(".trace"))

Or end-to-end from the CLI::

    repro exec run --pipeline "baseline|race(ilp@bnb,ilp@scipy)" \\
        --trace out.json --results out.jsonl
"""

from repro.obs.tracer import (
    DEFAULT_MAX_SPANS,
    ENV_TRACE,
    NULL_SCOPE,
    Span,
    Tracer,
    configure_tracing,
    flush_observability,
    get_tracer,
    read_spill_spans,
    trace_scope,
    trace_span,
    trace_span_detached,
    tracing_enabled,
)
from repro.obs.metrics import (
    HISTOGRAM_VALUE_CAP,
    Histogram,
    MetricsRegistry,
    collect_metrics,
    count,
    merge_spill_metrics,
    metrics,
    nearest_rank_percentile,
    observe,
)
from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_file,
    collect_spans,
    export_trace,
    format_metrics_table,
    span_tree_errors,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.progress import ProgressRenderer

__all__ = [
    "DEFAULT_MAX_SPANS",
    "ENV_TRACE",
    "HISTOGRAM_VALUE_CAP",
    "NULL_SCOPE",
    "Histogram",
    "MetricsRegistry",
    "ProgressRenderer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_file",
    "collect_metrics",
    "collect_spans",
    "configure_tracing",
    "count",
    "export_trace",
    "flush_observability",
    "format_metrics_table",
    "get_tracer",
    "merge_spill_metrics",
    "metrics",
    "nearest_rank_percentile",
    "observe",
    "read_spill_spans",
    "span_tree_errors",
    "trace_scope",
    "trace_span",
    "trace_span_detached",
    "tracing_enabled",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
]
