"""Span-based tracer: the substrate of :mod:`repro.obs`.

One process-wide :class:`Tracer` records :class:`Span` records into a
bounded in-memory buffer.  Spans carry thread/process-aware identity
(``pid``/``tid``/per-process ``span_id``), parent chaining via a
per-thread span stack, wall-clock epoch start times (cross-process
comparable, so sharded traces merge into one timeline) and
``perf_counter`` durations.

The hard constraint is zero cost when disabled: :func:`trace_span`
returns a shared no-op scope without allocating, and hot call sites can
guard attribute construction behind :func:`tracing_enabled`.

Cross-process collection uses a *spill directory*: each process appends
its finished spans to ``spans-<pid>.jsonl`` on :func:`flush` (called at
job and session boundaries — worker processes exit via ``os._exit`` so
``atexit`` hooks never run there).  Setting ``REPRO_TRACE`` enables
tracing in every process that imports this module, which is how
spawn-started shard/pool workers join a trace; fork-started workers
inherit the configured tracer and a pid check drops the parent's
buffered spans from the child.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

ENV_TRACE = "REPRO_TRACE"
"""Env knob: ``1``/``true`` enables tracing; any other non-empty value
enables tracing *and* names the spill directory for cross-process runs."""

DEFAULT_MAX_SPANS = 100_000


@dataclass
class Span:
    """One finished span: a named, timed region with free-form attrs."""

    name: str
    category: str
    span_id: int
    parent_id: Optional[int]
    pid: int
    tid: int
    start: float  # epoch seconds (cross-process comparable)
    duration: float  # seconds (perf_counter delta)
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(
            name=str(data["name"]),
            category=str(data.get("category", "")),
            span_id=int(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None else int(data["parent_id"])
            ),
            pid=int(data["pid"]),
            tid=int(data["tid"]),
            start=float(data["start"]),
            duration=float(data["duration"]),
            attrs=dict(data.get("attrs", {})),
        )


class _NullScope:
    """The shared no-op span scope returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SCOPE = _NullScope()


class _SpanScope:
    """Context manager for one live span; records it into the tracer on exit.

    *Detached* scopes (an explicit ``parent``) skip the per-thread span
    stack entirely: concurrently-open async spans in one event-loop thread
    would corrupt each other's stack-derived parents, so the Session's job
    lifecycle spans chain to the session span explicitly instead.
    """

    __slots__ = (
        "_tracer", "name", "category", "attrs", "span_id", "parent_id",
        "_t0", "_start", "_detached",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        attrs: Dict[str, object],
        parent: Optional[int] = None,
        detached: bool = False,
    ):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = parent
        self._t0 = 0.0
        self._start = 0.0
        self._detached = detached

    def set(self, **attrs) -> None:
        """Attach attrs discovered mid-span (cost out, winner, ...)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanScope":
        tracer = self._tracer
        tracer._check_pid()
        self.span_id = tracer._next_id()
        if not self._detached:
            stack = tracer._stack()
            self.parent_id = stack[-1] if stack else None
            stack.append(self.span_id)
        self._start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        tracer = self._tracer
        if not self._detached:
            stack = tracer._stack()
            if stack and stack[-1] == self.span_id:
                stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._record(
            Span(
                name=self.name,
                category=self.category,
                span_id=self.span_id,
                parent_id=self.parent_id,
                pid=tracer._pid,
                tid=threading.get_ident() & 0xFFFFFFFF,
                start=self._start,
                duration=duration,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Process-wide span recorder with a bounded buffer and JSONL spill."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.enabled = False
        self.spill_dir: Optional[str] = None
        self.max_spans = max_spans
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._counter = 0
        self._pid = os.getpid()
        self._spill_handle = None
        self.dropped = 0

    # -- identity ------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._counter += 1
            return self._counter

    def _check_pid(self) -> None:
        """Drop state inherited across ``fork``: the parent's buffered
        spans belong to (and are flushed by) the parent process."""
        if os.getpid() != self._pid:
            self._pid = os.getpid()
            self._spans = deque(maxlen=self.max_spans)
            self._local = threading.local()
            self._spill_handle = None
            self.dropped = 0

    # -- recording -----------------------------------------------------
    def span(self, name: str, category: str = "", **attrs) -> _SpanScope:
        return _SpanScope(self, name, category, attrs)

    def span_detached(
        self, name: str, category: str = "", parent: Optional[int] = None, **attrs
    ) -> _SpanScope:
        """A span chained to an explicit parent, outside the thread stack
        (for concurrently-open async spans in one thread)."""
        return _SpanScope(self, name, category, attrs, parent=parent, detached=True)

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def drain(self) -> List[Span]:
        """Remove and return every buffered span (local collection path)."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    # -- spill ---------------------------------------------------------
    def flush(self) -> int:
        """Append buffered spans to the per-pid spill file; returns count.

        No spill directory configured -> spans stay buffered (the local
        exporter drains them directly).
        """
        self._check_pid()
        if self.spill_dir is None:
            return 0
        spans = self.drain()
        if not spans:
            return 0
        path = os.path.join(self.spill_dir, f"spans-{self._pid}.jsonl")
        try:
            with self._lock:
                if self._spill_handle is None:
                    os.makedirs(self.spill_dir, exist_ok=True)
                    self._spill_handle = open(path, "a")
                for span in spans:
                    self._spill_handle.write(
                        json.dumps(span.to_dict(), default=repr, sort_keys=True)
                        + "\n"
                    )
                self._spill_handle.flush()
        except OSError:  # pragma: no cover - spill must never break runs
            return 0
        return len(spans)

    def close(self) -> None:
        self.flush()
        with self._lock:
            if self._spill_handle is not None:
                try:
                    self._spill_handle.close()
                except OSError:  # pragma: no cover
                    pass
                self._spill_handle = None

    def reset(self) -> None:
        """Forget everything (tests / between CLI trace scopes)."""
        self.close()
        with self._lock:
            self._spans.clear()
            self._counter = 0
            self.dropped = 0
        self._local = threading.local()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def tracing_enabled() -> bool:
    """Guard for call sites whose attr construction is not free."""
    return _TRACER.enabled


def trace_span(name: str, category: str = "", **attrs):
    """Open a span scope — the shared no-op scope when tracing is off.

    Usage::

        with trace_span("stage", category="pipeline", spec=token) as sp:
            ...
            sp.set(cost_out=cost)
    """
    if not _TRACER.enabled:
        return NULL_SCOPE
    return _TRACER.span(name, category, **attrs)


def trace_span_detached(
    name: str, category: str = "", parent: Optional[int] = None, **attrs
):
    """Like :func:`trace_span` but chained to an explicit ``parent`` span id
    (and kept off the per-thread stack) — for async code that holds several
    spans open concurrently in one thread."""
    if not _TRACER.enabled:
        return NULL_SCOPE
    return _TRACER.span_detached(name, category, parent=parent, **attrs)


def configure_tracing(
    enabled: bool, spill_dir: Optional[str] = None, max_spans: Optional[int] = None
) -> Tracer:
    """Turn tracing on/off process-wide; optionally set the spill directory."""
    if max_spans is not None and max_spans != _TRACER.max_spans:
        _TRACER.max_spans = max_spans
        _TRACER._spans = deque(_TRACER._spans, maxlen=max_spans)
    _TRACER.spill_dir = spill_dir
    _TRACER.enabled = enabled
    return _TRACER


def flush_observability() -> None:
    """Flush spans (and metrics) to the spill directory, if one is set.

    Called at job/session/worker boundaries: pool and shard workers exit
    via ``os._exit`` after ``_bootstrap``, so ``atexit`` never runs there.
    """
    _TRACER.flush()
    from repro.obs.metrics import metrics

    metrics().flush(_TRACER.spill_dir)


class trace_scope:
    """Context manager enabling tracing for a region (CLI ``--trace``).

    Exports ``REPRO_TRACE=<spill_dir>`` so worker processes started inside
    the scope (spawn *or* fork) join the trace; restores the previous
    configuration and environment on exit, flushing first.
    """

    def __init__(self, spill_dir: Optional[str] = None) -> None:
        self.spill_dir = spill_dir
        self._saved: Optional[tuple] = None

    def __enter__(self) -> Tracer:
        self._saved = (_TRACER.enabled, _TRACER.spill_dir, os.environ.get(ENV_TRACE))
        configure_tracing(True, spill_dir=self.spill_dir)
        os.environ[ENV_TRACE] = self.spill_dir if self.spill_dir else "1"
        return _TRACER

    def __exit__(self, *exc) -> bool:
        flush_observability()
        enabled, spill_dir, env = self._saved if self._saved else (False, None, None)
        configure_tracing(enabled, spill_dir=spill_dir)
        if env is None:
            os.environ.pop(ENV_TRACE, None)
        else:
            os.environ[ENV_TRACE] = env
        return False


def read_spill_spans(spill_dir: str) -> List[Span]:
    """Read every span spilled under ``spill_dir`` (all processes)."""
    spans: List[Span] = []
    try:
        names = sorted(os.listdir(spill_dir))
    except OSError:
        return spans
    for name in names:
        if not (name.startswith("spans-") and name.endswith(".jsonl")):
            continue
        try:
            with open(os.path.join(spill_dir, name)) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        spans.append(Span.from_dict(json.loads(line)))
                    except (ValueError, KeyError, TypeError):
                        continue
        except OSError:  # pragma: no cover - unreadable spill file
            continue
    return spans


def _configure_from_env() -> None:
    value = os.environ.get(ENV_TRACE, "").strip()
    if not value or value.lower() in ("0", "false", "off", "no"):
        return
    if value.lower() in ("1", "true", "on", "yes"):
        configure_tracing(True)
    else:
        configure_tracing(True, spill_dir=value)


_configure_from_env()
