"""Exporters: Chrome trace-event JSON and flat metrics dumps.

:func:`write_chrome_trace` renders collected spans as Chrome trace-event
JSON (``{"traceEvents": [...]}`` with ``ph: "X"`` complete events,
microsecond ``ts``/``dur``), loadable in Perfetto / ``chrome://tracing``.
Span epoch start times are shifted to the earliest span in the trace, so
a sharded run's per-process spill files merge into one coherent timeline.

:func:`validate_chrome_trace` is the schema check the CI obs-smoke job
and the test-suite run against exported files.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, collect_metrics
from repro.obs.tracer import Span, get_tracer, read_spill_spans


def collect_spans(spill_dir: Optional[str] = None) -> List[Span]:
    """Every span recorded so far, across processes.

    With a spill directory the local buffer is flushed first and the
    merged spill read back; without one the local tracer buffer is
    drained directly (single-process runs).  Spans come back sorted by
    ``(start, pid, span_id)`` — one coherent timeline.
    """
    tracer = get_tracer()
    if spill_dir is None:
        spill_dir = tracer.spill_dir
    if spill_dir is None:
        spans = tracer.drain()
    else:
        tracer.flush()
        spans = read_spill_spans(spill_dir)
    spans.sort(key=lambda s: (s.start, s.pid, s.span_id))
    return spans


def chrome_trace_events(spans: List[Span]) -> List[Dict[str, object]]:
    """Spans -> Chrome trace-event dicts (complete events + process names)."""
    if not spans:
        return []
    origin = min(span.start for span in spans)
    events: List[Dict[str, object]] = []
    for pid in sorted({span.pid for span in spans}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for span in spans:
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or "repro",
                "ph": "X",
                "ts": round((span.start - origin) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    return events


def write_chrome_trace(path: str, spans: List[Span]) -> int:
    """Write ``{"traceEvents": [...]}`` to ``path``; returns span count."""
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as handle:
        json.dump(document, handle, default=repr)
        handle.write("\n")
    return len(spans)


def validate_chrome_trace(document: object) -> Tuple[bool, List[str]]:
    """Schema check for a loaded Chrome trace-event document.

    Accepts the object form (``{"traceEvents": [...]}``) and validates
    every event: required keys, event-phase vocabulary, non-negative
    microsecond timestamps, integer pid/tid, dict args.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return False, ["top level must be an object with a traceEvents array"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return False, ["traceEvents must be an array"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append(f"{where}: missing name")
        phase = event.get("ph")
        if phase not in ("X", "M", "B", "E", "i", "C"):
            errors.append(f"{where}: bad phase {phase!r}")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: pid must be an int")
        if not isinstance(event.get("tid"), int):
            errors.append(f"{where}: tid must be an int")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: args must be an object")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{where}: {key} must be a non-negative number")
    return not errors, errors


def validate_chrome_trace_file(path: str) -> Tuple[bool, List[str]]:
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return False, [f"unreadable trace file: {exc}"]
    return validate_chrome_trace(document)


def format_metrics_table(registry: MetricsRegistry) -> List[str]:
    """The flat text dump: counters, then histogram percentile rows."""
    summary = registry.summary()
    lines: List[str] = []
    counters = summary["counters"]
    histograms = summary["histograms"]
    if counters:
        width = max(len(name) for name in counters)
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<{width}s}  {value:g}")
    if histograms:
        width = max(len(name) for name in histograms)
        lines.append("histograms:")
        for name, stats in histograms.items():
            lines.append(
                f"  {name:<{width}s}  count={stats['count']:g} sum={stats['sum']:.6g}"
                f" min={stats['min']:.6g} p50={stats['p50']:.6g}"
                f" p90={stats['p90']:.6g} p99={stats['p99']:.6g}"
                f" max={stats['max']:.6g}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return lines


def export_trace(
    path: str, spill_dir: Optional[str] = None, fmt: str = "chrome-trace"
) -> int:
    """Export collected observability data to ``path``.

    ``fmt``: ``chrome-trace`` (trace-event JSON), ``metrics`` (flat text)
    or ``metrics-json`` (the summary dict).  Returns the span count for
    traces, otherwise the number of metric names exported.
    """
    if fmt == "chrome-trace":
        return write_chrome_trace(path, collect_spans(spill_dir))
    registry = collect_metrics(spill_dir)
    summary = registry.summary()
    if fmt == "metrics-json":
        with open(path, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    elif fmt == "metrics":
        with open(path, "w") as handle:
            handle.write("\n".join(format_metrics_table(registry)) + "\n")
    else:
        raise ValueError(f"unknown export format: {fmt!r}")
    return len(summary["counters"]) + len(summary["histograms"])


class chrome_trace_file:
    """Enable tracing for a region and export a merged Chrome trace.

    The CLI ``--trace out.json`` wrapper: traces the body with a
    temporary spill directory (so pool/shard worker processes join via
    ``REPRO_TRACE``), then writes the merged trace-event file.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.span_count = 0
        self._tmpdir = None
        self._scope = None

    def __enter__(self) -> "chrome_trace_file":
        import tempfile

        from repro.obs.tracer import trace_scope

        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-obs-")
        self._scope = trace_scope(spill_dir=self._tmpdir.name)
        self._scope.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        spill = self._tmpdir.name if self._tmpdir is not None else None
        try:
            if exc_type is None and spill is not None:
                get_tracer().flush()
                spans = read_spill_spans(spill)
                spans.sort(key=lambda s: (s.start, s.pid, s.span_id))
                self.span_count = write_chrome_trace(self.path, spans)
        finally:
            if self._scope is not None:
                self._scope.__exit__(None, None, None)
            if self._tmpdir is not None:
                self._tmpdir.cleanup()
        return False


def span_tree_errors(spans: List[Span]) -> List[str]:
    """Structural check used by tests: every ``parent_id`` must name a
    span in the same process whose interval contains the child's."""
    by_key: Dict[Tuple[int, int], Span] = {(s.pid, s.span_id): s for s in spans}
    errors: List[str] = []
    slack = 0.005  # clock-read ordering slack between time.time()/perf_counter
    for span in spans:
        if span.parent_id is None:
            continue
        parent = by_key.get((span.pid, span.parent_id))
        if parent is None:
            errors.append(f"{span.name}: dangling parent_id {span.parent_id}")
            continue
        if span.start < parent.start - slack or (
            span.start + span.duration > parent.start + parent.duration + slack
        ):
            errors.append(
                f"{span.name} [{span.start:.6f},+{span.duration:.6f}] outside "
                f"parent {parent.name} [{parent.start:.6f},+{parent.duration:.6f}]"
            )
    return errors
